package stats

import (
	"math"
	"testing"
	"testing/quick"

	"cuttlesys/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constants = %v, want 0", got)
	}
	// population stddev of {1,2,3,4} = sqrt(1.25)
	if got := StdDev([]float64{1, 2, 3, 4}); !almostEq(got, math.Sqrt(1.25), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(1.25))
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("StdDev of single sample = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{3, 3, 3}); !almostEq(got, 3, 1e-12) {
		t.Errorf("GeoMean(3,3,3) = %v, want 3", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	// A zero throughput should crater the mean but not produce NaN.
	got := GeoMean([]float64{0, 100, 100})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("GeoMean with zero produced %v", got)
	}
	if got > 1 {
		t.Errorf("GeoMean with a zero entry = %v, want heavily penalised (<1)", got)
	}
}

func TestGeoMeanOrderInvariant(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(seed uint64) bool {
		local := rng.New(seed)
		xs := make([]float64, 5)
		for i := range xs {
			xs[i] = 0.1 + 10*local.Float64()
		}
		ys := append([]float64(nil), xs...)
		r.Shuffle(len(ys), func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
		return almostEq(GeoMean(xs), GeoMean(ys), 1e-9)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{9}, 0.99); got != 9 {
		t.Errorf("Percentile(single) = %v, want 9", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 0.5); !almostEq(got, 5, 1e-12) {
		t.Errorf("median of {0,10} = %v, want 5", got)
	}
}

func TestPercentileClampsP(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, -0.5); got != 1 {
		t.Errorf("Percentile(p<0) = %v, want min", got)
	}
	if got := Percentile(xs, 1.5); got != 3 {
		t.Errorf("Percentile(p>1) = %v, want max", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestP99MonotoneInP(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		v := Percentile(xs, p)
		if v < prev-1e-12 {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestBox(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	b := Box(xs)
	if b.N != 101 || b.Min != 0 || b.Max != 100 {
		t.Fatalf("Box basic fields wrong: %+v", b)
	}
	if !almostEq(b.Median, 50, 1e-9) || !almostEq(b.P25, 25, 1e-9) || !almostEq(b.P75, 75, 1e-9) {
		t.Fatalf("Box quartiles wrong: %+v", b)
	}
	if !almostEq(b.P5, 5, 1e-9) || !almostEq(b.P95, 95, 1e-9) {
		t.Fatalf("Box whiskers wrong: %+v", b)
	}
	if Box(nil).N != 0 {
		t.Fatal("Box(nil) should be zero value")
	}
}

func TestBoxOrdering(t *testing.T) {
	r := rng.New(3)
	if err := quick.Check(func(seed uint64) bool {
		local := rng.New(seed)
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = local.NormMeanStd(0, 10)
		}
		b := Box(xs)
		return b.Min <= b.P5 && b.P5 <= b.P25 && b.P25 <= b.Median &&
			b.Median <= b.P75 && b.P75 <= b.P95 && b.P95 <= b.Max
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestRelErrPct(t *testing.T) {
	if got := RelErrPct(110, 100); !almostEq(got, 10, 1e-9) {
		t.Errorf("RelErrPct(110,100) = %v, want 10", got)
	}
	if got := RelErrPct(90, 100); !almostEq(got, -10, 1e-9) {
		t.Errorf("RelErrPct(90,100) = %v, want -10", got)
	}
	if got := RelErrPct(1, 0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("RelErrPct with zero actual = %v, want finite", got)
	}
}

func TestMAPE(t *testing.T) {
	pred := []float64{110, 90}
	actual := []float64{100, 100}
	if got := MAPE(pred, actual); !almostEq(got, 10, 1e-9) {
		t.Errorf("MAPE = %v, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MAPE length mismatch did not panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestMinMaxIdx(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := MaxIdx(xs); got != 4 {
		t.Errorf("MaxIdx = %d, want 4", got)
	}
	if got := MinIdx(xs); got != 1 {
		t.Errorf("MinIdx = %d, want 1 (earliest tie)", got)
	}
	if MaxIdx(nil) != -1 || MinIdx(nil) != -1 {
		t.Error("empty MaxIdx/MinIdx should be -1")
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5}); !almostEq(got, 4, 1e-12) {
		t.Errorf("Sum = %v, want 4", got)
	}
}
