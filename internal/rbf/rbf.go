// Package rbf implements Flicker's inference pipeline (§VIII-E): 3MM3
// sampling [99] — an L9 orthogonal array over the three-factor,
// three-level core-configuration space — followed by cubic radial
// basis function surrogate fitting [100-104] to predict performance
// and power on all 27 core configurations from the 9 samples.
//
// The surrogate is the standard cubic RBF interpolant with a linear
// polynomial tail:
//
//	s(x) = Σ λᵢ‖x−xᵢ‖³ + c₀ + c·x
//
// fitted by solving the saddle-point system [Φ P; Pᵀ 0][λ;c] = [f;0].
// With fewer than four samples the linear tail is underdetermined and
// the fit degrades to a constant tail — the regime Fig. 9 probes when
// it gives RBF only three samples and observes errors reaching ±600 %.
package rbf

import (
	"fmt"
	"math"

	"cuttlesys/internal/config"
	"cuttlesys/internal/mat"
)

// Design3MM3 returns the nine core configurations of the 3MM3 sampling
// plan: an L9(3³) orthogonal array covering each section width at each
// level three times, balanced pairwise.
func Design3MM3() []config.Core {
	l9 := [9][3]int{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2},
		{1, 0, 1}, {1, 1, 2}, {1, 2, 0},
		{2, 0, 2}, {2, 1, 0}, {2, 2, 1},
	}
	out := make([]config.Core, 9)
	for i, row := range l9 {
		out[i] = config.Core{
			FE: config.Widths[row[0]],
			BE: config.Widths[row[1]],
			LS: config.Widths[row[2]],
		}
	}
	return out
}

// coord maps a core configuration into [0,1]³ for the RBF metric.
func coord(c config.Core) [3]float64 {
	f := func(w config.Width) float64 { return (float64(w) - 2) / 4 }
	return [3]float64{f(c.FE), f(c.BE), f(c.LS)}
}

func dist(a, b [3]float64) float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Surrogate is a fitted cubic RBF interpolant over core configurations.
type Surrogate struct {
	centers []([3]float64)
	lambda  []float64
	poly    []float64 // c0 [, cx, cy, cz] — constant tail when underdetermined
	linear  bool
}

// Fit builds a surrogate from sampled configurations and their
// observed values. At least two distinct samples are required; with
// fewer than four, the polynomial tail degrades to a constant. It
// returns an error when the interpolation system is singular
// (e.g. duplicate sample points).
func Fit(points []config.Core, values []float64) (*Surrogate, error) {
	n := len(points)
	if n != len(values) {
		return nil, fmt.Errorf("rbf: %d points but %d values", n, len(values))
	}
	if n < 2 {
		return nil, fmt.Errorf("rbf: need at least 2 samples, got %d", n)
	}
	centers := make([]([3]float64), n)
	for i, c := range points {
		centers[i] = coord(c)
	}
	linear := n >= 4
	np := 1
	if linear {
		np = 4
	}
	dim := n + np
	a := mat.NewDense(dim, dim)
	b := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := dist(centers[i], centers[j])
			a.Set(i, j, d*d*d)
		}
		a.Set(i, n, 1)
		a.Set(n, i, 1)
		if linear {
			for k := 0; k < 3; k++ {
				a.Set(i, n+1+k, centers[i][k])
				a.Set(n+1+k, i, centers[i][k])
			}
		}
		b[i] = values[i]
	}
	sol, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("rbf: fit failed: %w", err)
	}
	return &Surrogate{
		centers: centers,
		lambda:  sol[:n],
		poly:    sol[n:],
		linear:  linear,
	}, nil
}

// Predict evaluates the surrogate at core configuration c.
func (s *Surrogate) Predict(c config.Core) float64 {
	x := coord(c)
	v := s.poly[0]
	if s.linear {
		for k := 0; k < 3; k++ {
			v += s.poly[1+k] * x[k]
		}
	}
	for i, ctr := range s.centers {
		d := dist(x, ctr)
		v += s.lambda[i] * d * d * d
	}
	return v
}

// PredictAll evaluates the surrogate on all 27 core configurations, in
// config index order.
func (s *Surrogate) PredictAll() []float64 {
	out := make([]float64, config.NumCoreConfigs)
	for i, c := range config.AllCores() {
		out[i] = s.Predict(c)
	}
	return out
}
