package rbf

import (
	"math"
	"testing"

	"cuttlesys/internal/config"
	"cuttlesys/internal/perf"
	"cuttlesys/internal/stats"
	"cuttlesys/internal/workload"
)

func TestDesign3MM3Properties(t *testing.T) {
	d := Design3MM3()
	if len(d) != 9 {
		t.Fatalf("3MM3 has %d points, want 9", len(d))
	}
	// Orthogonal array: each level of each factor appears 3 times.
	for _, sect := range []func(config.Core) config.Width{
		func(c config.Core) config.Width { return c.FE },
		func(c config.Core) config.Width { return c.BE },
		func(c config.Core) config.Width { return c.LS },
	} {
		counts := map[config.Width]int{}
		for _, c := range d {
			counts[sect(c)]++
		}
		for _, w := range config.Widths {
			if counts[w] != 3 {
				t.Fatalf("level %v appears %d times, want 3", w, counts[w])
			}
		}
	}
	// All points distinct.
	seen := map[config.Core]bool{}
	for _, c := range d {
		if seen[c] {
			t.Fatalf("duplicate design point %v", c)
		}
		seen[c] = true
	}
}

func TestFitInterpolatesSamples(t *testing.T) {
	pts := Design3MM3()
	vals := make([]float64, len(pts))
	for i, c := range pts {
		vals[i] = float64(c.FE) + 2*float64(c.BE) + 0.5*float64(c.LS)
	}
	s, err := Fit(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range pts {
		if got := s.Predict(c); math.Abs(got-vals[i]) > 1e-6 {
			t.Fatalf("surrogate does not interpolate sample %v: %v vs %v", c, got, vals[i])
		}
	}
}

func TestFitRecoversLinearFunction(t *testing.T) {
	// A linear function of the widths should be reproduced exactly
	// everywhere (linear tail of the RBF).
	pts := Design3MM3()
	f := func(c config.Core) float64 { return 3 + float64(c.FE) - 0.5*float64(c.BE) + 2*float64(c.LS) }
	vals := make([]float64, len(pts))
	for i, c := range pts {
		vals[i] = f(c)
	}
	s, err := Fit(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range config.AllCores() {
		if got := s.Predict(c); math.Abs(got-f(c)) > 1e-6 {
			t.Fatalf("linear recovery failed at %v: %v vs %v", c, got, f(c))
		}
	}
}

// With the full 9-point design, RBF predicts the real performance
// surfaces decently; with only 3 samples it goes wild — the contrast
// Fig. 9 reports (outliers to ±600% with 3 samples for RBF vs ±20%
// for SGD with 2).
func TestNineSamplesBeatThreeSamples(t *testing.T) {
	pm := perf.New(true)
	apps := workload.SPEC()
	mapeAt := func(samplePts []config.Core) float64 {
		var errs []float64
		for _, app := range apps {
			truth := make(map[config.Core]float64, config.NumCoreConfigs)
			for _, c := range config.AllCores() {
				truth[c] = pm.BIPS(app, c, 1, 1)
			}
			vals := make([]float64, len(samplePts))
			for i, c := range samplePts {
				vals[i] = truth[c]
			}
			s, err := Fit(samplePts, vals)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range config.AllCores() {
				errs = append(errs, math.Abs(stats.RelErrPct(s.Predict(c), truth[c])))
			}
		}
		return stats.Mean(errs)
	}
	nine := mapeAt(Design3MM3())
	three := mapeAt([]config.Core{
		config.Narrowest,
		config.Widest,
		{FE: config.W4, BE: config.W4, LS: config.W4},
	})
	if nine > 15 {
		t.Errorf("9-sample RBF MAPE %v%%, expected usable accuracy", nine)
	}
	if three < 2*nine {
		t.Errorf("3-sample RBF MAPE %v%% should be far worse than 9-sample %v%%", three, nine)
	}
}

func TestFitErrors(t *testing.T) {
	pts := Design3MM3()
	if _, err := Fit(pts[:3], []float64{1, 2}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Fit(pts[:1], []float64{1}); err == nil {
		t.Error("single sample not rejected")
	}
	dup := []config.Core{config.Widest, config.Widest, config.Narrowest}
	if _, err := Fit(dup, []float64{1, 1, 2}); err == nil {
		t.Error("duplicate sample points not rejected")
	}
}

func TestPredictAllOrder(t *testing.T) {
	pts := Design3MM3()
	vals := make([]float64, len(pts))
	for i, c := range pts {
		vals[i] = float64(c.Index())
	}
	s, err := Fit(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	all := s.PredictAll()
	if len(all) != config.NumCoreConfigs {
		t.Fatalf("PredictAll returned %d values", len(all))
	}
	for i, c := range config.AllCores() {
		if math.Abs(all[i]-s.Predict(c)) > 1e-12 {
			t.Fatal("PredictAll order mismatch")
		}
	}
}
