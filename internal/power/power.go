// Package power implements the McPAT-substitute power and area model
// (DESIGN.md §1): per-section leakage plus activity-scaled dynamic
// power at the paper's 22 nm / 0.8 V / 4 GHz design point (Table I).
//
// Downsizing a section power gates its array structures, which reduces
// leakage proportionally to the gated width and dynamic power slightly
// super-linearly (clock-tree and wordline overheads fall with the
// powered arrays). Reconfigurable cores pay the AnyCore 18 % energy
// penalty per cycle relative to fixed cores, and a 19 % area penalty
// (§VII).
//
// Calibration: a {6,6,6} core running a hot application draws ≈3.5 W
// and a {2,2,2} core ≈1.1 W, so a 16-core slice spans the 15–60 W range
// Fig. 1 reports.
package power

import (
	"cuttlesys/internal/config"
	"cuttlesys/internal/workload"
	"math"
)

// Full-width per-section power weights in watts (22 nm, 4 GHz, 0.8 V).
// Leakage is drawn whenever the structures are powered; dynamic is
// scaled by the application's activity factor and achieved IPC.
const (
	feLeakW, feDynW = 0.50, 0.85 // fetch/decode/rename/dispatch/ROB
	beLeakW, beDynW = 0.60, 1.05 // issue queues, register files, units
	lsLeakW, lsDynW = 0.30, 0.45 // load/store queues
	l1LeakW, l1DynW = 0.08, 0.12 // private L1s (not reconfigurable)

	// dynExp captures the mildly super-linear fall of dynamic power as a
	// section narrows (gated arrays plus their clock distribution).
	dynExp = 1.1

	// GatedCoreW is the residual power of a fully power-gated core
	// (C6-like state).
	GatedCoreW = 0.05

	// UncorePerCoreW is each core's share of the interconnect, memory
	// controllers and IO.
	UncorePerCoreW = 0.35

	// LLCWayW is the per-way power of the shared LLC (leakage-dominated
	// at 22 nm).
	LLCWayW = 0.06
)

// Per-section core areas in mm² (22 nm), used for the §VII area
// accounting: CuttleSys's gains cost 19 % extra core area.
const (
	feAreaMM2 = 2.2
	beAreaMM2 = 2.8
	lsAreaMM2 = 1.2
	l1AreaMM2 = 1.5
)

// Model evaluates core and chip power. Reconfigurable selects whether
// the AnyCore energy penalty applies.
type Model struct {
	Reconfigurable bool
}

// New returns a power model for reconfigurable or fixed cores.
func New(reconfigurable bool) *Model { return &Model{Reconfigurable: reconfigurable} }

// utilisation maps achieved IPC to a dynamic-activity multiplier. The
// floor is high (0.5): a stalled core still drives its clock trees,
// wordlines and schedulers, so per-core power varies far less with the
// application than with the powered configuration — the first-order
// McPAT behaviour that makes whole-core gating policies nearly
// equivalent (§VII-B) while reconfiguration retains a wide power lever.
func utilisation(ipc float64) float64 {
	if ipc < 0 {
		ipc = 0
	}
	u := 0.6 + 0.4*ipc/6
	if u > 1 {
		u = 1
	}
	return u
}

// effectiveActivity compresses an application's activity factor toward
// 1: per-application dynamic-power spread on real cores is shallow
// (clock distribution and scheduler arrays dominate), and the paper's
// gating-policy comparison (§VII-B) implies per-core power varies far
// less across jobs than across configurations.
func effectiveActivity(act float64) float64 {
	return 0.95 + 0.3*(act-0.95)
}

// DVFS voltage model (§II-A1 motivation): razor-thin margins leave a
// narrow scaling range — Vdd falls from the nominal 0.8 V at 4 GHz to a
// 0.68 V floor, so voltage (and with it power) cannot scale down nearly
// as far as frequency, which is exactly why the paper argues for
// reconfiguration beyond DVFS.
const (
	vddNominal = config.VddVolts
	vddFloor   = 0.68
)

// DVFSVdd returns the supply voltage required for the given clock.
func DVFSVdd(freqGHz float64) float64 {
	frac := freqGHz / config.BaseFreqGHz
	v := vddFloor + (vddNominal-vddFloor)*frac
	if v > vddNominal {
		v = vddNominal
	}
	if v < vddFloor {
		v = vddFloor
	}
	return v
}

// CoreAtDVFS returns the power of one active core configured as c
// running app at the given achieved IPC and clock. Dynamic power
// scales with f·V², leakage with V.
func (m *Model) CoreAtDVFS(app *workload.Profile, c config.Core, ipc, freqGHz float64) float64 {
	util := utilisation(ipc)
	act := effectiveActivity(app.Activity)
	v := DVFSVdd(freqGHz) / vddNominal
	fScale := freqGHz / config.BaseFreqGHz
	dynScale := fScale * v * v
	leakScale := v

	dyn := func(fullDynW float64, w config.Width) float64 {
		return fullDynW * math.Pow(w.Scale(), dynExp) * act * util * dynScale
	}
	leak := func(fullLeakW float64, w config.Width) float64 {
		return fullLeakW * w.Scale() * leakScale
	}

	p := leak(feLeakW, c.FE) + dyn(feDynW, c.FE) +
		leak(beLeakW, c.BE) + dyn(beDynW, c.BE) +
		leak(lsLeakW, c.LS) + dyn(lsDynW, c.LS) +
		l1LeakW*leakScale + l1DynW*act*util*dynScale

	if m.Reconfigurable {
		p *= 1 + config.ReconfigEnergyPenalty
	}
	return p
}

// Core returns the power in watts of one active core configured as c,
// running app at the given achieved IPC.
func (m *Model) Core(app *workload.Profile, c config.Core, ipc float64) float64 {
	return m.CoreAtDVFS(app, c, ipc, config.BaseFreqGHz)
}

// LLC returns the power of the shared last-level cache with the given
// number of powered ways.
func (m *Model) LLC(ways float64) float64 {
	if ways < 0 {
		ways = 0
	}
	return LLCWayW * ways
}

// Uncore returns the non-core chip power for a machine with n cores.
func (m *Model) Uncore(n int) float64 { return UncorePerCoreW * float64(n) }

// CoreArea returns the area of one core in mm², including the AnyCore
// 19 % reconfiguration overhead when applicable (§VII).
func (m *Model) CoreArea() float64 {
	a := feAreaMM2 + beAreaMM2 + lsAreaMM2 + l1AreaMM2
	if m.Reconfigurable {
		a *= 1 + config.ReconfigAreaPenalty
	}
	return a
}
