package power

import (
	"testing"
	"testing/quick"

	"cuttlesys/internal/config"
	"cuttlesys/internal/workload"
)

func TestCorePowerRange(t *testing.T) {
	m := New(true)
	for _, app := range workload.All() {
		hi := m.Core(app, config.Widest, 4)
		lo := m.Core(app, config.Narrowest, 1)
		if hi < 2.0 || hi > 5.0 {
			t.Errorf("%s: widest-core power %v outside the 2-5 W calibration band", app.Name, hi)
		}
		if lo < 0.5 || lo > 2.0 {
			t.Errorf("%s: narrowest-core power %v outside the 0.5-2 W calibration band", app.Name, lo)
		}
		if hi/lo < 2 {
			t.Errorf("%s: reconfiguration power range %v too small to matter", app.Name, hi/lo)
		}
	}
}

// Power must be monotone in every section width — downsizing always
// saves power, or the scheduler's search space would be ill-posed.
func TestCorePowerMonotoneInWidths(t *testing.T) {
	m := New(true)
	app := workload.SPEC()[0]
	for _, base := range config.AllCores() {
		p0 := m.Core(app, base, 2)
		for _, section := range []config.Section{config.FrontEnd, config.BackEnd, config.LoadStore} {
			up := base
			switch section {
			case config.FrontEnd:
				if base.FE == config.W6 {
					continue
				}
				up.FE = base.FE + 2
			case config.BackEnd:
				if base.BE == config.W6 {
					continue
				}
				up.BE = base.BE + 2
			case config.LoadStore:
				if base.LS == config.W6 {
					continue
				}
				up.LS = base.LS + 2
			}
			if p1 := m.Core(app, up, 2); p1 <= p0 {
				t.Fatalf("power did not rise widening %v of %v: %v -> %v", section, base, p0, p1)
			}
		}
	}
}

func TestReconfigEnergyPenalty(t *testing.T) {
	app := workload.SPEC()[0]
	pr := New(true).Core(app, config.Widest, 3)
	pf := New(false).Core(app, config.Widest, 3)
	want := pf * 1.18
	if diff := pr - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("reconfigurable power %v, want fixed*1.18 = %v", pr, want)
	}
}

func TestPowerGrowsWithIPC(t *testing.T) {
	m := New(true)
	app := workload.SPEC()[0]
	if m.Core(app, config.Widest, 5) <= m.Core(app, config.Widest, 1) {
		t.Fatal("dynamic power should grow with achieved IPC")
	}
}

func TestPowerActivityFactor(t *testing.T) {
	m := New(true)
	hot := *workload.SPEC()[0]
	cold := hot
	hot.Activity, cold.Activity = 1.2, 0.7
	if m.Core(&hot, config.Widest, 3) <= m.Core(&cold, config.Widest, 3) {
		t.Fatal("higher-activity app should draw more power")
	}
}

func TestUtilisationClamps(t *testing.T) {
	if utilisation(-1) != 0.6 {
		t.Error("negative IPC should clamp to floor utilisation")
	}
	if utilisation(100) != 1 {
		t.Error("huge IPC should clamp to full utilisation")
	}
}

func TestLLCAndUncore(t *testing.T) {
	m := New(true)
	if m.LLC(32) <= m.LLC(16) {
		t.Error("LLC power should grow with powered ways")
	}
	if m.LLC(-5) != 0 {
		t.Error("negative ways should clamp to zero power")
	}
	if m.Uncore(32) != 32*UncorePerCoreW {
		t.Error("uncore power wrong")
	}
}

func TestFig1PowerBand(t *testing.T) {
	// Fig. 1: a 16-core slice spans roughly 15-60 W across configs.
	m := New(true)
	for _, app := range workload.TailBench() {
		hi := 16 * m.Core(app, config.Widest, 3)
		lo := 16 * m.Core(app, config.Narrowest, 0.8)
		if hi > 65 || lo < 10 {
			t.Errorf("%s: 16-core band [%v, %v] outside Fig. 1's range", app.Name, lo, hi)
		}
	}
}

func TestCoreArea(t *testing.T) {
	fixed := New(false).CoreArea()
	reconf := New(true).CoreArea()
	want := fixed * 1.19
	if diff := reconf - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("reconfigurable area %v, want fixed*1.19 = %v", reconf, want)
	}
}

func TestGatedResidualBelowAnyActive(t *testing.T) {
	m := New(true)
	if err := quick.Check(func(seed uint64, ci uint8) bool {
		app := workload.Synthetic(seed, 1)[0]
		c := config.CoreByIndex(int(ci) % config.NumCoreConfigs)
		return m.Core(app, c, 0.1) > GatedCoreW
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDVFSVddRange(t *testing.T) {
	if got := DVFSVdd(config.BaseFreqGHz); got != config.VddVolts {
		t.Fatalf("nominal Vdd = %v, want %v", got, config.VddVolts)
	}
	if got := DVFSVdd(0); got != vddFloor {
		t.Fatalf("floor Vdd = %v, want %v", got, vddFloor)
	}
	if DVFSVdd(5) != config.VddVolts {
		t.Fatal("Vdd must clamp at nominal")
	}
	prev := 0.0
	for _, f := range []float64{1, 2, 3, 4} {
		v := DVFSVdd(f)
		if v < prev {
			t.Fatal("Vdd must be non-decreasing in frequency")
		}
		prev = v
	}
}

func TestCoreAtDVFSSavesPower(t *testing.T) {
	m := New(false)
	app := workload.SPEC()[0]
	full := m.CoreAtDVFS(app, config.Widest, 3, 4.0)
	slow := m.CoreAtDVFS(app, config.Widest, 3, 2.4)
	if slow >= full {
		t.Fatal("downclocking must save power")
	}
	// §II-A: the razor-thin voltage range caps DVFS savings well above
	// what width reconfiguration achieves (narrowest config is ~1/3 of
	// widest; the lowest DVFS step stays above 45%).
	if slow < 0.45*full {
		t.Fatalf("DVFS savings too deep for the voltage floor: %v of %v", slow, full)
	}
	if got := m.CoreAtDVFS(app, config.Widest, 3, 4.0); got != m.Core(app, config.Widest, 3) {
		t.Fatalf("Core must equal CoreAtDVFS at nominal: %v vs %v", m.Core(app, config.Widest, 3), got)
	}
}
