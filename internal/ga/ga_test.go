package ga

import (
	"math"
	"testing"

	"cuttlesys/internal/rng"
)

func sphere(target []int) Objective {
	return func(x []int) float64 {
		s := 0.0
		for d := range x {
			diff := float64(x[d] - target[d])
			s -= diff * diff
		}
		return s
	}
}

func TestFindsNearOptimum(t *testing.T) {
	target := []int{10, 50, 90, 30}
	res := Search(sphere(target), Params{
		Dims: 4, NumConfigs: 108, Seed: 1, Generations: 120, Population: 80,
	})
	for d := range target {
		if math.Abs(float64(res.Best[d]-target[d])) > 8 {
			t.Fatalf("dim %d: found %d, want near %d", d, res.Best[d], target[d])
		}
	}
}

func TestImprovesOverRandom(t *testing.T) {
	target := []int{40, 70, 20, 90, 10, 60, 30, 80}
	obj := sphere(target)
	r := rng.New(2)
	randBest := math.Inf(-1)
	for i := 0; i < 50; i++ {
		x := make([]int, 8)
		for d := range x {
			x[d] = r.Intn(108)
		}
		if v := obj(x); v > randBest {
			randBest = v
		}
	}
	res := Search(obj, Params{Dims: 8, NumConfigs: 108, Seed: 2})
	if res.BestVal <= randBest {
		t.Fatalf("GA (%v) did not beat random sampling (%v)", res.BestVal, randBest)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	obj := sphere([]int{15, 85})
	a := Search(obj, Params{Dims: 2, NumConfigs: 108, Seed: 3})
	b := Search(obj, Params{Dims: 2, NumConfigs: 108, Seed: 3})
	if a.BestVal != b.BestVal || a.Best[0] != b.Best[0] || a.Best[1] != b.Best[1] {
		t.Fatal("GA not deterministic for equal seeds")
	}
}

func TestElitismNeverLosesBest(t *testing.T) {
	// Track the best value seen via recording; the final result must
	// match the best recorded point (elitism + best tracking).
	obj := sphere([]int{55, 5, 105})
	res := Search(obj, Params{Dims: 3, NumConfigs: 108, Seed: 4, Record: true})
	recorded := math.Inf(-1)
	for _, p := range res.Points {
		if p.Val > recorded {
			recorded = p.Val
		}
	}
	if res.BestVal != recorded {
		t.Fatalf("BestVal %v != best recorded %v", res.BestVal, recorded)
	}
}

func TestInitSeeding(t *testing.T) {
	target := []int{77, 7, 47, 17}
	res := Search(sphere(target), Params{
		Dims: 4, NumConfigs: 108, Seed: 5, Init: [][]int{append([]int(nil), target...)},
	})
	if res.BestVal != 0 {
		t.Fatalf("seeded optimum lost: %v", res.Best)
	}
}

func TestParallelEvaluation(t *testing.T) {
	obj := sphere([]int{25, 75, 50, 100, 0, 60})
	serial := Search(obj, Params{Dims: 6, NumConfigs: 108, Seed: 6})
	parallel := Search(obj, Params{Dims: 6, NumConfigs: 108, Seed: 6, Workers: 4})
	// Same seed drives the same evolution; only evaluation order differs.
	if parallel.BestVal != serial.BestVal {
		t.Fatalf("parallel evaluation changed the result: %v vs %v", parallel.BestVal, serial.BestVal)
	}
}

func TestEvalsAccounting(t *testing.T) {
	p := Params{Dims: 2, NumConfigs: 10, Seed: 7, Population: 20, Generations: 5, Elite: 2}
	res := Search(sphere([]int{3, 4}), p)
	want := 20 + 5*(20-2) // initial population + offspring per generation
	if res.Evals != want {
		t.Fatalf("Evals = %d, want %d", res.Evals, want)
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for i, p := range []Params{
		{Dims: 0, NumConfigs: 5},
		{Dims: 2, NumConfigs: 0},
		{Dims: 2, NumConfigs: 5, Init: [][]int{{1, 2, 3}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			Search(func([]int) float64 { return 0 }, p)
		}()
	}
}
