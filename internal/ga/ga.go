// Package ga implements the genetic algorithm that Flicker [18] uses
// for design-space exploration, reproduced here as the comparison
// searcher of §VIII-E (Figs. 9 and 10). Candidates are integer vectors
// over the same configuration domain as DDS; the algorithm runs
// tournament selection, uniform crossover, per-gene mutation and
// elitism over a fixed number of generations.
package ga

import (
	"math"
	"sync"

	"cuttlesys/internal/rng"
)

// Objective scores a candidate; higher is better. It must be safe for
// concurrent use when Workers > 1.
type Objective func(x []int) float64

// Params configures a run. Defaults give an evaluation budget
// comparable to the paper's DDS settings so the two searchers can be
// compared at equal cost.
type Params struct {
	// Dims is the number of decision variables.
	Dims int
	// NumConfigs is the per-dimension domain size.
	NumConfigs int
	// Population size. Default 50.
	Population int
	// Generations to evolve. Default 40.
	Generations int
	// TournamentK is the tournament size. Default 3.
	TournamentK int
	// CrossoverRate is the probability a child is produced by
	// crossover rather than cloning. Default 0.9.
	CrossoverRate float64
	// MutationRate is the per-gene mutation probability. Default 2/Dims
	// (expected two mutations per child).
	MutationRate float64
	// Elite is the number of best individuals copied unchanged into the
	// next generation. Default 2.
	Elite int
	// Workers parallelises fitness evaluation. Default 1.
	Workers int
	// Seed drives all randomness.
	Seed uint64
	// Record retains every evaluated point — for Fig. 10a.
	Record bool
	// Init optionally seeds individuals into the initial population.
	Init [][]int
}

func (p Params) withDefaults() Params {
	if p.Population == 0 {
		p.Population = 50
	}
	if p.Generations == 0 {
		p.Generations = 40
	}
	if p.TournamentK == 0 {
		p.TournamentK = 3
	}
	if p.CrossoverRate == 0 {
		p.CrossoverRate = 0.9
	}
	if p.MutationRate == 0 {
		p.MutationRate = 2 / math.Max(1, float64(p.Dims))
	}
	if p.Elite == 0 {
		p.Elite = 2
	}
	if p.Workers == 0 {
		p.Workers = 1
	}
	return p
}

// Point is one evaluated candidate.
type Point struct {
	X   []int
	Val float64
}

// Result is the outcome of a run.
type Result struct {
	Best    []int
	BestVal float64
	Evals   int
	Points  []Point
}

type individual struct {
	genes []int
	fit   float64
}

// Search evolves the population and returns the best individual found.
// It panics on invalid parameters.
func Search(obj Objective, params Params) Result {
	p := params.withDefaults()
	if p.Dims <= 0 || p.NumConfigs <= 0 {
		panic("ga: Dims and NumConfigs must be positive")
	}
	for _, x := range p.Init {
		if len(x) != p.Dims {
			panic("ga: Init individual with wrong dimensionality")
		}
	}
	if p.Elite > p.Population {
		p.Elite = p.Population
	}

	r := rng.New(p.Seed)
	var (
		mu    sync.Mutex
		rec   []Point
		evals int
	)
	record := func(x []int, v float64) {
		mu.Lock()
		evals++
		if p.Record {
			cp := make([]int, len(x))
			copy(cp, x)
			rec = append(rec, Point{X: cp, Val: v})
		}
		mu.Unlock()
	}

	evaluate := func(pop []individual) {
		if p.Workers <= 1 {
			for i := range pop {
				pop[i].fit = obj(pop[i].genes)
				record(pop[i].genes, pop[i].fit)
			}
			return
		}
		var wg sync.WaitGroup
		ch := make(chan int)
		for w := 0; w < p.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ch {
					pop[i].fit = obj(pop[i].genes)
					record(pop[i].genes, pop[i].fit)
				}
			}()
		}
		for i := range pop {
			ch <- i
		}
		close(ch)
		wg.Wait()
	}

	// Initial population: seeded individuals then random fill.
	pop := make([]individual, p.Population)
	for i := range pop {
		genes := make([]int, p.Dims)
		if i < len(p.Init) {
			copy(genes, p.Init[i])
		} else {
			for d := range genes {
				genes[d] = r.Intn(p.NumConfigs)
			}
		}
		pop[i] = individual{genes: genes}
	}
	evaluate(pop)

	best := individual{genes: make([]int, p.Dims), fit: math.Inf(-1)}
	updateBest := func(pop []individual) {
		for i := range pop {
			if pop[i].fit > best.fit {
				best.fit = pop[i].fit
				copy(best.genes, pop[i].genes)
			}
		}
	}
	updateBest(pop)

	tournament := func(pop []individual) *individual {
		winner := &pop[r.Intn(len(pop))]
		for k := 1; k < p.TournamentK; k++ {
			c := &pop[r.Intn(len(pop))]
			if c.fit > winner.fit {
				winner = c
			}
		}
		return winner
	}

	for gen := 0; gen < p.Generations; gen++ {
		next := make([]individual, 0, p.Population)
		// Elitism: keep the current best individuals.
		elite := topK(pop, p.Elite)
		for _, e := range elite {
			genes := make([]int, p.Dims)
			copy(genes, e.genes)
			next = append(next, individual{genes: genes, fit: e.fit})
		}
		for len(next) < p.Population {
			a, b := tournament(pop), tournament(pop)
			child := make([]int, p.Dims)
			if r.Float64() < p.CrossoverRate {
				for d := range child {
					if r.Float64() < 0.5 {
						child[d] = a.genes[d]
					} else {
						child[d] = b.genes[d]
					}
				}
			} else {
				copy(child, a.genes)
			}
			for d := range child {
				if r.Float64() < p.MutationRate {
					child[d] = r.Intn(p.NumConfigs)
				}
			}
			next = append(next, individual{genes: child})
		}
		// Elites carry their fitness; only evaluate the offspring.
		evaluate(next[len(elite):])
		pop = next
		updateBest(pop)
	}

	return Result{Best: best.genes, BestVal: best.fit, Evals: evals, Points: rec}
}

// topK returns the k fittest individuals (k small; selection sort).
func topK(pop []individual, k int) []individual {
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	if k > len(pop) {
		k = len(pop)
	}
	out := make([]individual, 0, k)
	for n := 0; n < k; n++ {
		bi := n
		for i := n; i < len(idx); i++ {
			if pop[idx[i]].fit > pop[idx[bi]].fit {
				bi = i
			}
		}
		idx[n], idx[bi] = idx[bi], idx[n]
		out = append(out, pop[idx[n]])
	}
	return out
}
