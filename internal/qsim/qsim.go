// Package qsim simulates a latency-critical interactive service as an
// open-loop M/G/k queueing system — the TailBench-substitute substrate
// (DESIGN.md §1). Queries arrive in a Poisson stream at the offered
// load, each carries a log-normally distributed instruction demand, and
// a central FCFS queue feeds the k cores assigned to the service. The
// per-query service time is the demand divided by the core's speed,
// which the machine simulator derives from the performance model for
// the service's current core configuration and cache allocation.
//
// Tail latency of an interactive service is a queueing phenomenon: p99
// sojourn time is flat while the offered load is well below the
// configuration-dependent capacity and explodes as it approaches it —
// exactly the Fig. 1 characterisation the paper builds on. Simulating
// the queue, rather than modelling it analytically, also reproduces the
// transient behaviour of §VIII-D: backlog accumulated during a load
// spike keeps violating QoS until the runtime reacts.
//
// The simulator carries state across calls (server busy horizons), so
// the machine can step it in sub-slice increments — 1 ms profiling
// windows followed by the 98 ms steady state — with configuration
// changes applying to queries that start after the change, the way a
// real reconfiguration would.
package qsim

import (
	"container/heap"
	"math"

	"cuttlesys/internal/rng"
)

// Service is the queueing state of one latency-critical service.
type Service struct {
	r      *rng.RNG
	now    float64  // simulation clock, seconds
	freeAt freeHeap // per-server next-free times
}

// NewService returns a service with k servers (cores), all idle at
// time zero. It panics when k <= 0.
func NewService(seed uint64, k int) *Service {
	if k <= 0 {
		panic("qsim: NewService with non-positive server count")
	}
	s := &Service{r: rng.New(seed)}
	s.freeAt = make(freeHeap, k)
	heap.Init(&s.freeAt)
	return s
}

// Now returns the simulation clock in seconds.
func (s *Service) Now() float64 { return s.now }

// Servers returns the current number of servers.
func (s *Service) Servers() int { return len(s.freeAt) }

// SetServers changes the number of servers (cores allocated to the
// service) effective immediately: shrinking removes the servers that
// would become free last (their in-flight work migrates to the
// remaining cores' horizon is conservative enough at 100 ms decision
// granularity), growing adds servers that are free now. It panics when
// k <= 0.
func (s *Service) SetServers(k int) {
	if k <= 0 {
		panic("qsim: SetServers with non-positive server count")
	}
	for len(s.freeAt) > k {
		s.freeAt.removeLatest()
	}
	for len(s.freeAt) < k {
		heap.Push(&s.freeAt, s.now)
	}
}

// Step simulates the window [now, now+dur) with Poisson arrivals at
// qps queries per second, mean service time meanSvc seconds and
// log-normal demand dispersion sigma. It returns the sojourn times
// (queueing + service, in seconds) of every query arriving in the
// window; queries may complete after the window ends — their full
// sojourn is still charged to this window, matching how the paper
// measures tail latency over whole timeslices. dur and meanSvc must be
// positive; qps may be zero (an idle window).
func (s *Service) Step(dur, qps, meanSvc, sigma float64) []float64 {
	if dur <= 0 {
		panic("qsim: Step with non-positive duration")
	}
	if meanSvc <= 0 {
		panic("qsim: Step with non-positive service time")
	}
	end := s.now + dur
	var sojourns []float64
	if qps > 0 {
		// mu chosen so the log-normal multiplier has mean 1.
		mu := -sigma * sigma / 2
		t := s.now + s.r.Exp(qps)
		for t < end {
			demand := meanSvc * s.r.LogNormal(mu, sigma)
			// FCFS central queue: the next query runs on the server
			// that frees earliest.
			free := s.freeAt[0]
			start := math.Max(t, free)
			finish := start + demand
			s.freeAt.replaceMin(finish)
			sojourns = append(sojourns, finish-t)
			t += s.r.Exp(qps)
		}
	}
	s.now = end
	return sojourns
}

// Backlog returns the amount of queued work, in seconds beyond the
// current clock, on the busiest server — a cheap congestion signal.
func (s *Service) Backlog() float64 {
	worst := 0.0
	for _, f := range s.freeAt {
		if b := f - s.now; b > worst {
			worst = b
		}
	}
	return worst
}

// Reset clears all server state, keeping the server count and the
// random stream position.
func (s *Service) Reset() {
	for i := range s.freeAt {
		s.freeAt[i] = s.now
	}
	heap.Init(&s.freeAt)
}

// freeHeap is a min-heap of server next-free times.
type freeHeap []float64

func (h freeHeap) Len() int            { return len(h) }
func (h freeHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h freeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *freeHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *freeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// replaceMin replaces the minimum element and restores heap order.
func (h freeHeap) replaceMin(v float64) {
	h[0] = v
	heap.Fix(&h, 0)
}

// removeLatest removes the server that frees last.
func (h *freeHeap) removeLatest() {
	idx := 0
	for i, v := range *h {
		if v > (*h)[idx] {
			idx = i
		}
	}
	heap.Remove(h, idx)
}

// P99Analytic approximates the steady-state p99 sojourn time of an
// M/G/k FCFS queue with k servers, arrival rate qps, mean service time
// meanSvc and log-normal dispersion sigma. The queueing-delay tail uses
// the M/M/k Erlang-C waiting probability with an exponential tail (a
// standard heavy-traffic approximation); the service tail adds the
// log-normal p99 quantile. When the offered load reaches or exceeds
// capacity it returns +Inf.
//
// The discrete-event Step is the ground truth everywhere in the
// machine simulator; this closed form exists for the oracle baselines
// and wide parameter sweeps where simulating every candidate would
// dominate runtime. The agreement between the two is covered by tests.
func P99Analytic(k int, qps, meanSvc, sigma float64) float64 {
	if k <= 0 || meanSvc <= 0 {
		panic("qsim: P99Analytic with invalid parameters")
	}
	if qps <= 0 {
		// Idle service: p99 is just the service-time quantile.
		return svcP99(meanSvc, sigma)
	}
	mu := 1 / meanSvc
	rho := qps / (float64(k) * mu)
	if rho >= 1 {
		return math.Inf(1)
	}
	pWait := erlangC(k, qps*meanSvc)
	// P(Wq > t) ≈ pWait · exp(−(kμ−λ)t)
	decay := float64(k)*mu - qps
	wq99 := 0.0
	if pWait > 0.01 {
		wq99 = math.Log(pWait/0.01) / decay
	}
	return wq99 + svcP99(meanSvc, sigma)
}

// svcP99 is the p99 of a log-normal service time with mean meanSvc.
func svcP99(meanSvc, sigma float64) float64 {
	const z99 = 2.3263478740408408
	return meanSvc * math.Exp(sigma*z99-sigma*sigma/2)
}

// erlangC returns the M/M/k probability that an arrival waits, with
// offered load a = λ/μ erlangs. Computed with the usual stable
// recurrence on the Erlang-B blocking probability.
func erlangC(k int, a float64) float64 {
	if a <= 0 {
		return 0
	}
	// Erlang-B recurrence: B(0)=1; B(n) = a·B(n−1)/(n + a·B(n−1)).
	b := 1.0
	for n := 1; n <= k; n++ {
		b = a * b / (float64(n) + a*b)
	}
	rho := a / float64(k)
	return b / (1 - rho + rho*b)
}
