// Package qsim simulates a latency-critical interactive service as an
// open-loop M/G/k queueing system — the TailBench-substitute substrate
// (DESIGN.md §1). Queries arrive in a Poisson stream at the offered
// load, each carries a log-normally distributed instruction demand, and
// a central FCFS queue feeds the k cores assigned to the service. The
// per-query service time is the demand divided by the core's speed,
// which the machine simulator derives from the performance model for
// the service's current core configuration and cache allocation.
//
// Tail latency of an interactive service is a queueing phenomenon: p99
// sojourn time is flat while the offered load is well below the
// configuration-dependent capacity and explodes as it approaches it —
// exactly the Fig. 1 characterisation the paper builds on. Simulating
// the queue, rather than modelling it analytically, also reproduces the
// transient behaviour of §VIII-D: backlog accumulated during a load
// spike keeps violating QoS until the runtime reacts.
//
// The simulator carries state across calls (server busy horizons), so
// the machine can step it in sub-slice increments — 1 ms profiling
// windows followed by the 98 ms steady state — with configuration
// changes applying to queries that start after the change, the way a
// real reconfiguration would.
package qsim

import (
	"math"

	"cuttlesys/internal/rng"
)

// Service is the queueing state of one latency-critical service.
type Service struct {
	r      *rng.RNG
	now    float64  // simulation clock, seconds
	freeAt freeHeap // per-server next-free times
}

// NewService returns a service with k servers (cores), all idle at
// time zero. It panics when k <= 0.
func NewService(seed uint64, k int) *Service {
	if k <= 0 {
		panic("qsim: NewService with non-positive server count")
	}
	s := &Service{r: rng.New(seed)}
	s.freeAt = make(freeHeap, k)
	s.freeAt.init()
	return s
}

// Now returns the simulation clock in seconds.
func (s *Service) Now() float64 { return s.now }

// Servers returns the current number of servers.
func (s *Service) Servers() int { return len(s.freeAt) }

// SetServers changes the number of servers (cores allocated to the
// service) effective immediately: shrinking removes the servers that
// would become free last (their in-flight work migrates to the
// remaining cores' horizon is conservative enough at 100 ms decision
// granularity), growing adds servers that are free now. It panics when
// k <= 0.
func (s *Service) SetServers(k int) {
	if k <= 0 {
		panic("qsim: SetServers with non-positive server count")
	}
	for len(s.freeAt) > k {
		s.freeAt.removeLatest()
	}
	for len(s.freeAt) < k {
		s.freeAt.push(s.now)
	}
}

// Advance moves the simulation clock forward dur seconds without
// offering arrivals — the zero-throughput escape hatch. A configuration
// whose service time is infinite completes nothing; simulating arrivals
// against it would park +Inf in the server heap and poison every later
// window, so the machine advances the clock instead and scores the
// window as violated. dur must be positive.
func (s *Service) Advance(dur float64) {
	if dur <= 0 {
		panic("qsim: Advance with non-positive duration")
	}
	s.now += dur
}

// Step simulates the window [now, now+dur) with Poisson arrivals at
// qps queries per second, mean service time meanSvc seconds and
// log-normal demand dispersion sigma. It returns the sojourn times
// (queueing + service, in seconds) of every query arriving in the
// window; queries may complete after the window ends — their full
// sojourn is still charged to this window, matching how the paper
// measures tail latency over whole timeslices. dur and meanSvc must be
// positive; qps may be zero (an idle window).
func (s *Service) Step(dur, qps, meanSvc, sigma float64) []float64 {
	if dur <= 0 {
		panic("qsim: Step with non-positive duration")
	}
	if meanSvc <= 0 {
		panic("qsim: Step with non-positive service time")
	}
	end := s.now + dur
	var sojourns []float64
	if qps > 0 {
		// mu chosen so the log-normal multiplier has mean 1.
		mu := -sigma * sigma / 2
		t := s.now + s.r.Exp(qps)
		for t < end {
			demand := meanSvc * s.r.LogNormal(mu, sigma)
			// FCFS central queue: the next query runs on the server
			// that frees earliest.
			free := s.freeAt[0]
			start := math.Max(t, free)
			finish := start + demand
			s.freeAt.replaceMin(finish)
			sojourns = append(sojourns, finish-t)
			t += s.r.Exp(qps)
		}
	}
	s.now = end
	return sojourns
}

// Backlog returns the amount of queued work, in seconds beyond the
// current clock, on the busiest server — a cheap congestion signal.
func (s *Service) Backlog() float64 {
	worst := 0.0
	for _, f := range s.freeAt {
		if b := f - s.now; b > worst {
			worst = b
		}
	}
	return worst
}

// Reset clears all server state, keeping the server count and the
// random stream position.
func (s *Service) Reset() {
	for i := range s.freeAt {
		s.freeAt[i] = s.now
	}
	s.freeAt.init()
}

// freeHeap is a direct float64 min-heap of server next-free times. It
// used to be a container/heap implementation; the interface{} boxing on
// Push/Pop allocated on every server-count change and the dynamic
// dispatch sat on the per-query replaceMin path. The sift procedures
// below reproduce container/heap's up/down element-for-element (same
// comparisons, same swap order), so every heap reaches exactly the
// states the boxed version reached and Step's output is bit-identical.
type freeHeap []float64

// down sifts h[i0] toward the leaves within h[:n]; it reports whether
// the element moved. The loop mirrors container/heap's down.
func (h freeHeap) down(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2] < h[j1] {
			j = j2 // right child
		}
		if !(h[j] < h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return i > i0
}

// up sifts h[j] toward the root, mirroring container/heap's up.
func (h freeHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(h[j] < h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

// init establishes heap order over the whole slice.
func (h freeHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

// push adds a server next-free time.
func (h *freeHeap) push(v float64) {
	*h = append(*h, v)
	h.up(len(*h) - 1)
}

// replaceMin replaces the minimum element and restores heap order.
//
//hot:path once per simulated query
func (h freeHeap) replaceMin(v float64) {
	h[0] = v
	h.down(0, len(h))
}

// removeLatest removes the server that frees last, mirroring
// container/heap's Remove on the max element's index.
func (h *freeHeap) removeLatest() {
	idx := 0
	for i, v := range *h {
		if v > (*h)[idx] {
			idx = i
		}
	}
	n := len(*h) - 1
	if n != idx {
		(*h)[idx], (*h)[n] = (*h)[n], (*h)[idx]
		if !h.down(idx, n) {
			h.up(idx)
		}
	}
	*h = (*h)[:n]
}

// P99Analytic approximates the steady-state p99 sojourn time of an
// M/G/k FCFS queue with k servers, arrival rate qps, mean service time
// meanSvc and log-normal dispersion sigma. The queueing-delay tail uses
// the M/M/k Erlang-C waiting probability with an exponential tail (a
// standard heavy-traffic approximation); the service tail adds the
// log-normal p99 quantile. When the offered load reaches or exceeds
// capacity it returns +Inf.
//
// The discrete-event Step is the ground truth everywhere in the
// machine simulator; this closed form exists for the oracle baselines
// and wide parameter sweeps where simulating every candidate would
// dominate runtime. The agreement between the two is covered by tests.
func P99Analytic(k int, qps, meanSvc, sigma float64) float64 {
	if k <= 0 || meanSvc <= 0 {
		panic("qsim: P99Analytic with invalid parameters")
	}
	if qps <= 0 {
		// Idle service: p99 is just the service-time quantile.
		return svcP99(meanSvc, sigma)
	}
	mu := 1 / meanSvc
	rho := qps / (float64(k) * mu)
	if rho >= 1 {
		return math.Inf(1)
	}
	pWait := erlangC(k, qps*meanSvc)
	// P(Wq > t) ≈ pWait · exp(−(kμ−λ)t)
	decay := float64(k)*mu - qps
	wq99 := 0.0
	if pWait > 0.01 {
		wq99 = math.Log(pWait/0.01) / decay
	}
	return wq99 + svcP99(meanSvc, sigma)
}

// P99AnalyticBatch evaluates P99Analytic across candidate server
// counts ks, writing results into out (allocated when nil) and
// returning it. The Erlang-B recurrence underlying the waiting
// probability is the scalar path's only per-k loop and is a prefix
// computation — B(n) depends only on B(n−1) and the offered load — so
// the batch runs the recurrence once to max(ks) and reads each k's
// value off the shared sequence. Every per-k tail term replicates the
// scalar expression verbatim, so out[i] is bit-identical to
// P99Analytic(ks[i], ...). Cost is O(max(ks) + len(ks)) instead of the
// scalar sweep's O(Σ ks).
func P99AnalyticBatch(ks []int, qps, meanSvc, sigma float64, out []float64) []float64 {
	if meanSvc <= 0 {
		panic("qsim: P99AnalyticBatch with invalid parameters")
	}
	if out == nil {
		out = make([]float64, len(ks))
	}
	if len(out) < len(ks) {
		panic("qsim: P99AnalyticBatch output shorter than candidate list")
	}
	maxK := 0
	for _, k := range ks {
		if k <= 0 {
			panic("qsim: P99AnalyticBatch with invalid parameters")
		}
		if k > maxK {
			maxK = k
		}
	}
	if qps <= 0 {
		// Idle service: p99 is just the service-time quantile.
		p := svcP99(meanSvc, sigma)
		for i := range ks {
			out[i] = p
		}
		return out[:len(ks)]
	}
	mu := 1 / meanSvc
	a := qps * meanSvc
	// Shared Erlang-B prefix: bAt[n] is the blocking probability after n
	// recurrence steps, exactly the b the scalar erlangC holds when its
	// loop counter reaches n.
	bAt := make([]float64, maxK+1)
	bAt[0] = 1
	b := 1.0
	for n := 1; n <= maxK; n++ {
		b = a * b / (float64(n) + a*b)
		bAt[n] = b
	}
	svc := svcP99(meanSvc, sigma)
	for i, k := range ks {
		rho := qps / (float64(k) * mu)
		if rho >= 1 {
			out[i] = math.Inf(1)
			continue
		}
		var pWait float64
		if a > 0 {
			// erlangC's own load ratio a/k, not the outer rho: the two
			// can differ in the last bit and the scalar computes both.
			rhoB := a / float64(k)
			pWait = bAt[k] / (1 - rhoB + rhoB*bAt[k])
		}
		decay := float64(k)*mu - qps
		wq99 := 0.0
		if pWait > 0.01 {
			wq99 = math.Log(pWait/0.01) / decay
		}
		out[i] = wq99 + svc
	}
	return out[:len(ks)]
}

// svcP99 is the p99 of a log-normal service time with mean meanSvc.
func svcP99(meanSvc, sigma float64) float64 {
	const z99 = 2.3263478740408408
	return meanSvc * math.Exp(sigma*z99-sigma*sigma/2)
}

// erlangC returns the M/M/k probability that an arrival waits, with
// offered load a = λ/μ erlangs. Computed with the usual stable
// recurrence on the Erlang-B blocking probability.
func erlangC(k int, a float64) float64 {
	if a <= 0 {
		return 0
	}
	// Erlang-B recurrence: B(0)=1; B(n) = a·B(n−1)/(n + a·B(n−1)).
	b := 1.0
	for n := 1; n <= k; n++ {
		b = a * b / (float64(n) + a*b)
	}
	rho := a / float64(k)
	return b / (1 - rho + rho*b)
}
