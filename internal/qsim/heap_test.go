package qsim

import (
	"container/heap"
	"math"
	"testing"

	"cuttlesys/internal/rng"
)

// boxedHeap is the container/heap implementation freeHeap replaced,
// kept here as the reference the direct float64 heap must match
// state-for-state.
type boxedHeap []float64

func (h boxedHeap) Len() int            { return len(h) }
func (h boxedHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

func (h *boxedHeap) removeLatest() {
	idx := 0
	for i, v := range *h {
		if v > (*h)[idx] {
			idx = i
		}
	}
	heap.Remove(h, idx)
}

func heapsEqual(t *testing.T, op string, got freeHeap, want boxedHeap) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", op, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: slot %d = %v, want %v (heaps %v vs %v)", op, i, got[i], want[i], got, want)
		}
	}
}

// TestFreeHeapMatchesContainerHeap drives the direct heap and the
// boxed reference through an identical randomized op stream — init,
// push, replaceMin, removeLatest — and demands byte-equal layouts
// after every operation. Equal layout after every step implies Step's
// query placement (which reads h[0] and sifts the replacement) is
// bit-identical to the pre-rewrite simulator.
func TestFreeHeapMatchesContainerHeap(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(12)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 10
		}
		direct := append(freeHeap(nil), vals...)
		boxed := append(boxedHeap(nil), vals...)
		direct.init()
		heap.Init(&boxed)
		heapsEqual(t, "init", direct, boxed)

		for op := 0; op < 200; op++ {
			switch r.Intn(3) {
			case 0:
				v := r.Float64() * 10
				direct.push(v)
				heap.Push(&boxed, v)
			case 1:
				v := r.Float64() * 10
				direct.replaceMin(v)
				boxed[0] = v
				heap.Fix(&boxed, 0)
			case 2:
				if len(direct) > 1 {
					direct.removeLatest()
					boxed.removeLatest()
				}
			}
			heapsEqual(t, "op", direct, boxed)
		}
	}
}

// TestStepZeroAllocSteadyState pins that the per-query path (heap
// reads, sifts, arrival draws) no longer allocates; only the returned
// sojourn slice may grow.
func TestStepZeroAllocSteadyState(t *testing.T) {
	s := NewService(7, 8)
	meanSvc := 1e-3
	// Warm up so append capacity stabilizes inside the measured calls'
	// own slices (each call allocates only its result slice).
	s.Step(0.05, 1000, meanSvc, 0.3)
	allocs := testing.AllocsPerRun(50, func() {
		s.SetServers(8)
		s.Advance(0.001)
	})
	if allocs != 0 {
		t.Fatalf("SetServers+Advance allocate %v per run, want 0", allocs)
	}
}

func TestAdvance(t *testing.T) {
	s := NewService(5, 4)
	s.Step(0.1, 500, 1e-3, 0.3)
	before := s.Now()
	backlog := s.Backlog()
	s.Advance(0.25)
	if got := s.Now(); got != before+0.25 {
		t.Fatalf("Now() = %v after Advance, want %v", got, before+0.25)
	}
	// Advancing offers no arrivals, so the busy horizons are unchanged
	// and backlog can only shrink relative to the new clock.
	if got := s.Backlog(); got > backlog {
		t.Fatalf("backlog grew across Advance: %v → %v", backlog, got)
	}
	// The stream continues deterministically afterwards.
	sj := s.Step(0.1, 500, 1e-3, 0.3)
	if len(sj) == 0 {
		t.Fatal("no arrivals after Advance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(0) did not panic")
		}
	}()
	s.Advance(0)
}
