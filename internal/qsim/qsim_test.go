package qsim

import (
	"math"
	"testing"

	"cuttlesys/internal/stats"
)

func TestLowLoadLatencyNearServiceTime(t *testing.T) {
	s := NewService(1, 16)
	meanSvc := 0.7e-3
	var all []float64
	for i := 0; i < 20; i++ {
		all = append(all, s.Step(0.1, 2000, meanSvc, 0.4)...) // ~12% utilisation
	}
	p50 := stats.Percentile(all, 0.5)
	if p50 > 2*meanSvc {
		t.Fatalf("median sojourn %v at low load, want near service time %v", p50, meanSvc)
	}
}

func TestLatencyExplodesNearSaturation(t *testing.T) {
	meanSvc := 0.7e-3
	k := 16
	capacity := float64(k) / meanSvc // ~22.8k QPS
	p99At := func(qps float64) float64 {
		s := NewService(2, k)
		var all []float64
		for i := 0; i < 150; i++ {
			all = append(all, s.Step(0.1, qps, meanSvc, 0.4)...)
		}
		return stats.P99(all)
	}
	low := p99At(0.2 * capacity)
	mid := p99At(0.7 * capacity)
	high := p99At(0.98 * capacity)
	if !(low <= mid && mid < high) {
		t.Fatalf("p99 not increasing with load: %v %v %v", low, mid, high)
	}
	if high < 4*low {
		t.Fatalf("near-saturation p99 %v should be several times low-load p99 %v", high, low)
	}
}

func TestOverloadAccumulatesBacklog(t *testing.T) {
	s := NewService(3, 4)
	meanSvc := 1e-3
	capacity := 4 / meanSvc
	s.Step(0.1, 2*capacity, meanSvc, 0.3)
	if s.Backlog() <= 0 {
		t.Fatal("overloaded service should accumulate backlog")
	}
	b1 := s.Backlog()
	s.Step(0.1, 2*capacity, meanSvc, 0.3)
	if s.Backlog() <= b1 {
		t.Fatal("backlog should keep growing under sustained overload")
	}
}

func TestBacklogDrainsAfterLoadDrop(t *testing.T) {
	s := NewService(4, 8)
	meanSvc := 1e-3
	capacity := 8 / meanSvc
	s.Step(0.2, 1.5*capacity, meanSvc, 0.3)
	high := s.Backlog()
	for i := 0; i < 10; i++ {
		s.Step(0.1, 0.1*capacity, meanSvc, 0.3)
	}
	if s.Backlog() >= high/2 {
		t.Fatalf("backlog did not drain: %v -> %v", high, s.Backlog())
	}
}

func TestFasterServersCutLatency(t *testing.T) {
	run := func(meanSvc float64) float64 {
		s := NewService(5, 16)
		var all []float64
		for i := 0; i < 20; i++ {
			all = append(all, s.Step(0.1, 15000, meanSvc, 0.4)...)
		}
		return stats.P99(all)
	}
	fast := run(0.5e-3)  // like a {6,6,6} config
	slow := run(0.95e-3) // like a narrow config near saturation
	if slow <= fast {
		t.Fatalf("slower cores should raise p99: fast %v, slow %v", fast, slow)
	}
}

func TestSetServers(t *testing.T) {
	s := NewService(6, 8)
	if s.Servers() != 8 {
		t.Fatal("initial server count wrong")
	}
	s.SetServers(4)
	if s.Servers() != 4 {
		t.Fatal("shrink failed")
	}
	s.SetServers(10)
	if s.Servers() != 10 {
		t.Fatal("grow failed")
	}
	// More servers must reduce tail latency at fixed load.
	p99With := func(k int) float64 {
		svc := NewService(7, k)
		var all []float64
		for i := 0; i < 20; i++ {
			all = append(all, svc.Step(0.1, 10000, 1e-3, 0.4)...)
		}
		return stats.P99(all)
	}
	if p99With(16) >= p99With(11) {
		t.Fatal("adding servers should cut tail latency near saturation")
	}
}

func TestStepPanics(t *testing.T) {
	s := NewService(8, 2)
	for _, fn := range []func(){
		func() { s.Step(0, 100, 1e-3, 0.3) },
		func() { s.Step(0.1, 100, 0, 0.3) },
		func() { NewService(9, 0) },
		func() { s.SetServers(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZeroQPSWindow(t *testing.T) {
	s := NewService(10, 4)
	if got := s.Step(0.1, 0, 1e-3, 0.3); len(got) != 0 {
		t.Fatalf("idle window produced %d sojourns", len(got))
	}
	if s.Now() != 0.1 {
		t.Fatal("clock did not advance on idle window")
	}
}

func TestArrivalCountMatchesPoisson(t *testing.T) {
	s := NewService(11, 64)
	qps := 5000.0
	n := 0
	const windows = 50
	for i := 0; i < windows; i++ {
		n += len(s.Step(0.1, qps, 1e-4, 0.3))
	}
	want := qps * 0.1 * windows
	if math.Abs(float64(n)-want) > 0.05*want {
		t.Fatalf("arrivals %d, want ~%v", n, want)
	}
}

func TestReset(t *testing.T) {
	s := NewService(12, 4)
	s.Step(0.1, 8000, 1e-3, 0.3)
	s.Reset()
	if s.Backlog() != 0 {
		t.Fatal("Reset should clear backlog")
	}
}

func TestP99AnalyticAgreesWithSimulation(t *testing.T) {
	// At moderate loads the closed form should land within ~35% of the
	// discrete-event simulation — close enough for oracle baselines.
	meanSvc := 0.7e-3
	sigma := 0.4
	k := 16
	for _, loadFrac := range []float64{0.3, 0.6, 0.8} {
		qps := loadFrac * float64(k) / meanSvc
		s := NewService(13, k)
		var all []float64
		for i := 0; i < 100; i++ {
			all = append(all, s.Step(0.1, qps, meanSvc, sigma)...)
		}
		sim := stats.P99(all)
		analytic := P99Analytic(k, qps, meanSvc, sigma)
		ratio := analytic / sim
		if ratio < 0.6 || ratio > 1.6 {
			t.Errorf("load %.0f%%: analytic %v vs sim %v (ratio %.2f)", 100*loadFrac, analytic, sim, ratio)
		}
	}
}

func TestP99AnalyticSaturation(t *testing.T) {
	if !math.IsInf(P99Analytic(4, 5000, 1e-3, 0.3), 1) {
		t.Fatal("overloaded analytic p99 should be +Inf")
	}
	idle := P99Analytic(4, 0, 1e-3, 0.3)
	if idle <= 1e-3 || idle > 3e-3 {
		t.Fatalf("idle analytic p99 = %v, want slightly above mean service time", idle)
	}
}

func TestP99AnalyticMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for _, qps := range []float64{1000, 5000, 10000, 14000, 15500} {
		v := P99Analytic(16, qps, 1e-3, 0.4)
		if v < prev {
			t.Fatalf("analytic p99 decreased with load at %v qps", qps)
		}
		prev = v
	}
}

func TestErlangCBounds(t *testing.T) {
	for _, k := range []int{1, 4, 16, 32} {
		for _, rho := range []float64{0.1, 0.5, 0.9, 0.99} {
			c := erlangC(k, rho*float64(k))
			if c < 0 || c > 1 {
				t.Fatalf("erlangC(%d, rho=%v) = %v outside [0,1]", k, rho, c)
			}
		}
	}
	if erlangC(4, 0) != 0 {
		t.Fatal("erlangC with zero load should be 0")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		s := NewService(42, 8)
		return s.Step(0.1, 9000, 1e-3, 0.4)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replay values differ")
		}
	}
}
