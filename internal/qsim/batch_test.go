package qsim

import (
	"math"
	"testing"
)

// TestP99AnalyticBatchEquivalence sweeps the operating envelope —
// light load through past saturation, tight and dispersed demand —
// and demands exact float64 equality between the batch and the scalar
// closed form at every candidate server count.
func TestP99AnalyticBatchEquivalence(t *testing.T) {
	ks := make([]int, 64)
	for i := range ks {
		ks[i] = i + 1
	}
	for _, meanSvc := range []float64{0.2e-3, 0.7e-3, 3e-3} {
		for _, sigma := range []float64{0, 0.3, 0.8} {
			for _, load := range []float64{0, 0.1, 0.6, 0.95, 1.1} {
				qps := load * 16 / meanSvc
				got := P99AnalyticBatch(ks, qps, meanSvc, sigma, nil)
				for i, k := range ks {
					want := P99Analytic(k, qps, meanSvc, sigma)
					if math.Float64bits(got[i]) != math.Float64bits(want) {
						t.Fatalf("k=%d qps=%v svc=%v sigma=%v: batch %v != scalar %v",
							k, qps, meanSvc, sigma, got[i], want)
					}
				}
			}
		}
	}
}

// TestP99AnalyticBatchOutReuse checks the caller-provided buffer is
// written in place (the alloc-free sweep mode) and unsorted, repeated
// candidate lists work.
func TestP99AnalyticBatchOutReuse(t *testing.T) {
	ks := []int{8, 1, 32, 8}
	out := make([]float64, 8)
	got := P99AnalyticBatch(ks, 5000, 0.7e-3, 0.4, out)
	if len(got) != len(ks) || &got[0] != &out[0] {
		t.Fatal("batch did not write into the caller's buffer")
	}
	if math.Float64bits(got[0]) != math.Float64bits(got[3]) {
		t.Fatal("repeated candidate produced different values")
	}
	for i, k := range ks {
		want := P99Analytic(k, 5000, 0.7e-3, 0.4)
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("k=%d: %v != %v", k, got[i], want)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		P99AnalyticBatch(ks[:2], 5000, 0.7e-3, 0.4, out)
	})
	// Only the shared Erlang prefix may allocate; with small maxK the
	// runtime may still place it on the heap, so just bound it.
	if allocs > 1 {
		t.Fatalf("batch with caller buffer allocates %v per run, want ≤1", allocs)
	}
}

func TestP99AnalyticBatchPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { P99AnalyticBatch([]int{1}, 100, 0, 0.3, nil) },
		func() { P99AnalyticBatch([]int{0}, 100, 1e-3, 0.3, nil) },
		func() { P99AnalyticBatch([]int{1, 2}, 100, 1e-3, 0.3, make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid batch parameters did not panic")
				}
			}()
			bad()
		}()
	}
}

func BenchmarkP99Sweep(b *testing.B) {
	ks := make([]int, 32)
	for i := range ks {
		ks[i] = i + 1
	}
	out := make([]float64, len(ks))
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, k := range ks {
				out[j] = P99Analytic(k, 5000, 0.7e-3, 0.4)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			P99AnalyticBatch(ks, 5000, 0.7e-3, 0.4, out)
		}
	})
}
