package ucp

import (
	"testing"
	"testing/quick"

	"cuttlesys/internal/workload"
)

func curveFor(p *workload.Profile) Curve {
	return Curve{
		MissRatio: p.MissRatio,
		Weight:    p.MemFrac * p.L1MissRate,
	}
}

func TestSumsToBudget(t *testing.T) {
	apps := workload.SPEC()[:8]
	curves := make([]Curve, len(apps))
	for i, a := range apps {
		curves[i] = curveFor(a)
	}
	alloc := Partition(curves, 32, 1)
	sum := 0
	for i, w := range alloc {
		if w < 1 {
			t.Fatalf("app %d below minimum: %d", i, w)
		}
		sum += w
	}
	if sum != 32 {
		t.Fatalf("allocation sums to %d, want 32", sum)
	}
}

func TestCacheHungryAppsWinWays(t *testing.T) {
	mcf := mustApp(t, "mcf")       // large working set, memory-bound
	gamess := mustApp(t, "gamess") // tiny working set
	curves := []Curve{curveFor(mcf), curveFor(gamess)}
	alloc := Partition(curves, 16, 1)
	if alloc[0] <= alloc[1] {
		t.Fatalf("mcf got %d ways, gamess %d — memory-bound app should win", alloc[0], alloc[1])
	}
}

func TestZeroWeightGetsMinimum(t *testing.T) {
	flat := Curve{MissRatio: func(float64) float64 { return 0.5 }, Weight: 0}
	hungry := curveFor(func() *workload.Profile { p := mustApp(t, "mcf"); return p }())
	alloc := Partition([]Curve{flat, hungry}, 10, 1)
	if alloc[0] != 1 {
		t.Fatalf("zero-weight app got %d ways, want the minimum 1", alloc[0])
	}
	if alloc[1] != 9 {
		t.Fatalf("remaining ways not given to the only beneficiary: %v", alloc)
	}
}

func TestAllFlatCurvesDistributesEvenly(t *testing.T) {
	flat := Curve{MissRatio: func(float64) float64 { return 0.5 }, Weight: 1}
	alloc := Partition([]Curve{flat, flat, flat, flat}, 8, 1)
	sum := 0
	for _, w := range alloc {
		sum += w
	}
	if sum != 8 {
		t.Fatalf("flat curves: sum %d, want 8", sum)
	}
}

func TestLookaheadHandlesCliffCurves(t *testing.T) {
	// App A: no benefit until 4 ways, then a cliff. App B: small smooth
	// gains. Greedy single-way allocation would starve A; lookahead
	// must see the cliff.
	cliff := Curve{
		MissRatio: func(w float64) float64 {
			if w >= 4 {
				return 0.05
			}
			return 0.9
		},
		Weight: 1,
	}
	smooth := Curve{
		MissRatio: func(w float64) float64 { return 0.5 / (1 + w*0.05) },
		Weight:    1,
	}
	alloc := Partition([]Curve{cliff, smooth}, 6, 0)
	if alloc[0] < 4 {
		t.Fatalf("lookahead missed the cliff: %v", alloc)
	}
}

func TestMinimumBudgetPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible minimums did not panic")
		}
	}()
	flat := Curve{MissRatio: func(float64) float64 { return 0 }, Weight: 0}
	Partition([]Curve{flat, flat, flat}, 2, 1)
}

func TestEmptyInput(t *testing.T) {
	if got := Partition(nil, 32, 1); got != nil {
		t.Fatalf("empty input should return nil, got %v", got)
	}
}

func TestPartitionProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw, budgetRaw uint8) bool {
		n := 1 + int(nRaw%10)
		budget := n + int(budgetRaw%32)
		apps := workload.Synthetic(seed, n)
		curves := make([]Curve, n)
		for i, a := range apps {
			curves[i] = curveFor(a)
		}
		alloc := Partition(curves, budget, 1)
		sum := 0
		for _, w := range alloc {
			if w < 1 {
				return false
			}
			sum += w
		}
		return sum == budget
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// mustApp resolves a workload profile by name, failing the test on a
// bad name so the error is never silently dropped.
func mustApp(t testing.TB, name string) *workload.Profile {
	t.Helper()
	app, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return app
}
