// Package ucp implements Utility-based Cache Partitioning (Qureshi &
// Patt [80]) — the way-partitioning scheme the paper's core-gating
// baseline uses ("core-gating with LLC way-partitioning", §VII-B),
// since the technique is available on real cloud servers.
//
// Each application contributes a utility curve — the LLC misses it
// avoids per unit time as a function of allocated ways — and the
// lookahead algorithm greedily assigns ways to whichever application
// offers the highest marginal utility per way, considering multi-way
// steps so that curves with plateaus followed by cliffs (streaming
// working sets) are handled correctly.
package ucp

// Curve is one application's demand on the cache.
type Curve struct {
	// MissRatio returns the LLC miss ratio at the given ways.
	MissRatio func(ways float64) float64
	// Weight converts miss-ratio reduction into utility — accesses per
	// unit time (an app that rarely touches the LLC gains little from
	// ways regardless of its curve shape).
	Weight float64
}

// Partition assigns totalWays integer ways among the applications,
// giving each at least minWays, maximising total utility with the UCP
// lookahead algorithm. It panics when the budget cannot cover the
// minimum allocations. The returned slice sums to exactly totalWays
// (leftover ways with zero marginal utility are distributed
// round-robin, matching hardware that cannot leave ways unpowered to
// no one).
func Partition(curves []Curve, totalWays, minWays int) []int {
	n := len(curves)
	if n == 0 {
		return nil
	}
	if minWays < 0 {
		minWays = 0
	}
	if n*minWays > totalWays {
		panic("ucp: budget below minimum allocations")
	}
	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = minWays
	}
	balance := totalWays - n*minWays

	utility := func(i, from, to int) float64 {
		return curves[i].Weight *
			(curves[i].MissRatio(float64(from)) - curves[i].MissRatio(float64(to)))
	}

	for balance > 0 {
		bestApp, bestSteps := -1, 0
		bestMU := 0.0
		for i := range curves {
			// Lookahead: the step size maximising utility per way.
			for k := 1; k <= balance; k++ {
				mu := utility(i, alloc[i], alloc[i]+k) / float64(k)
				if mu > bestMU {
					bestMU, bestApp, bestSteps = mu, i, k
				}
			}
		}
		if bestApp < 0 {
			break // no one benefits; distribute the rest below
		}
		alloc[bestApp] += bestSteps
		balance -= bestSteps
	}
	// Hand out zero-utility leftovers round-robin.
	for i := 0; balance > 0; i = (i + 1) % n {
		alloc[i]++
		balance--
	}
	return alloc
}
