package harness

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"cuttlesys/internal/config"
	"cuttlesys/internal/obs"
	"cuttlesys/internal/sim"
)

// fixedScheduler is staticScheduler with the FixedOverhead contract:
// it promises its overhead up front and Decide always charges it.
type fixedScheduler struct{ staticScheduler }

func (s *fixedScheduler) DecisionOverheadSec() float64 { return s.overhead }

// lyingScheduler promises one overhead but charges another — the
// contract violation the driver must turn into an error, since the
// hold phase already ran for the promised duration.
type lyingScheduler struct{ staticScheduler }

func (s *lyingScheduler) DecisionOverheadSec() float64 { return s.overhead / 2 }

// driveSlices steps a fresh machine/scheduler pair through n slices at
// a constant load, mirroring runImpl's per-slice setup so the records
// are comparable across Params settings.
func driveSlices(t *testing.T, s MultiScheduler, n int, p Params) (*Result, uint64) {
	t.Helper()
	m := testMachine(t)
	d, err := NewDriver(m, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Detach()
	d.SetParams(p)
	maxPower := m.MaxPowerW()
	res := &Result{Scheduler: s.Name()}
	for i := 0; i < n; i++ {
		qps := 0.5 * m.LC().MaxQPS
		rec, err := d.StepSlice([]float64{qps}, 0.5, 0.8*maxPower)
		if err != nil {
			t.Fatal(err)
		}
		res.Slices = append(res.Slices, rec)
	}
	return res, d.OverlapQuanta()
}

func mkFixed(overhead float64) *fixedScheduler {
	return &fixedScheduler{staticScheduler{
		alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
		profiles: []Phase{{Dur: 0.001, Alloc: sim.Uniform(16, true, 16, config.Narrowest, config.OneWay)}},
		overhead: overhead,
	}}
}

// TestPipelineBitIdenticalToSerial is the core determinism contract of
// Params.Pipeline: overlapping the decision compute with the hold
// phase must leave every slice record byte-identical to the serial
// schedule, because the hold interval is identical and the two
// goroutines share no state until the join.
func TestPipelineBitIdenticalToSerial(t *testing.T) {
	const slices = 6
	serial, overlapS := driveSlices(t, Single(mkFixed(0.0061)), slices, Params{})
	piped, overlapP := driveSlices(t, Single(mkFixed(0.0061)), slices, Params{Pipeline: true})
	if overlapS != 0 {
		t.Fatalf("serial run reported %d overlap quanta", overlapS)
	}
	// Slice 0 has no previous allocation to hold, so it runs serial.
	if want := uint64(slices - 1); overlapP != want {
		t.Fatalf("pipelined run overlapped %d quanta, want %d", overlapP, want)
	}
	if !reflect.DeepEqual(serial.Slices, piped.Slices) {
		t.Fatal("pipelined slice records diverged from the serial schedule")
	}
}

// TestPipelineDeterministicAcrossGOMAXPROCS pins that the overlap is
// scheduling-invariant: the join point, not the Go scheduler, orders
// every observable effect.
func TestPipelineDeterministicAcrossGOMAXPROCS(t *testing.T) {
	ambient, _ := driveSlices(t, Single(mkFixed(0.0061)), 5, Params{Pipeline: true})
	prev := runtime.GOMAXPROCS(1)
	pinned, _ := driveSlices(t, Single(mkFixed(0.0061)), 5, Params{Pipeline: true})
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(ambient.Slices, pinned.Slices) {
		t.Fatalf("pipelined run differs between GOMAXPROCS=%d and GOMAXPROCS=1", prev)
	}
}

// TestPipelineOverheadMismatchError: a FixedOverhead scheduler whose
// Decide charges a different overhead than it promised must surface as
// an error — the hold already ran for the promised duration, so the
// slice timeline would silently desynchronise otherwise.
func TestPipelineOverheadMismatchError(t *testing.T) {
	s := &lyingScheduler{staticScheduler{
		alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
		overhead: 0.008,
	}}
	m := testMachine(t)
	d, err := NewDriver(m, Single(s), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Detach()
	d.SetParams(Params{Pipeline: true})
	qps := []float64{0.5 * m.LC().MaxQPS}
	// Slice 0 is serial (no previous allocation) and succeeds.
	if _, err := d.StepSlice(qps, 0.5, 0.8*m.MaxPowerW()); err != nil {
		t.Fatal(err)
	}
	_, err = d.StepSlice(qps, 0.5, 0.8*m.MaxPowerW())
	if err == nil || !strings.Contains(err.Error(), "promised") {
		t.Fatalf("mismatched overhead: got err %v, want promise-violation error", err)
	}
}

// TestPipelineGateRequiresFixedOverhead: a scheduler that does not
// implement FixedOverhead (the Single adapter reports 0) never
// pipelines, even with the knob on.
func TestPipelineGateRequiresFixedOverhead(t *testing.T) {
	s := &staticScheduler{
		alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
		overhead: 0.0061,
	}
	_, overlap := driveSlices(t, Single(s), 4, Params{Pipeline: true})
	if overlap != 0 {
		t.Fatalf("non-FixedOverhead scheduler overlapped %d quanta, want 0", overlap)
	}
}

// TestPipelineGateOffUnderTrace: with a collector attached the driver
// must fall back to the serial schedule — concurrent trace emission
// would make event order run-dependent.
func TestPipelineGateOffUnderTrace(t *testing.T) {
	m := testMachine(t)
	d, err := NewDriver(m, Single(mkFixed(0.0061)), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Detach()
	d.SetParams(Params{Pipeline: true})
	d.SetCollector(obs.NewRecorder())
	qps := []float64{0.5 * m.LC().MaxQPS}
	for i := 0; i < 3; i++ {
		if _, err := d.StepSlice(qps, 0.5, 0.8*m.MaxPowerW()); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.OverlapQuanta(); got != 0 {
		t.Fatalf("traced run overlapped %d quanta, want 0", got)
	}
}

// TestHotpathTelemetryEmitted: a traced run reports the machine's
// surface-table counters as monotone metric series.
func TestHotpathTelemetryEmitted(t *testing.T) {
	m := testMachine(t)
	d, err := NewDriver(m, Single(mkFixed(0.0061)), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Detach()
	rec := obs.NewRecorder()
	d.SetCollector(rec)
	qps := []float64{0.5 * m.LC().MaxQPS}
	for i := 0; i < 3; i++ {
		if _, err := d.StepSlice(qps, 0.5, 0.8*m.MaxPowerW()); err != nil {
			t.Fatal(err)
		}
	}
	snap := rec.Registry().Snapshot()
	var lookups float64
	found := false
	for _, s := range snap {
		if s.Name == obs.MetricHotpathLookups {
			lookups, found = s.Value, true
		}
	}
	if !found || lookups <= 0 {
		t.Fatalf("hotpath lookup metric missing or zero (found=%v, v=%v)", found, lookups)
	}
	_, machineLookups := m.SurfaceStats()
	if lookups != float64(machineLookups) {
		t.Fatalf("metric reports %v lookups, machine counted %d", lookups, machineLookups)
	}
}
