// Package harness drives scheduler-vs-machine experiments: it owns the
// decision-quantum loop of §IV-B (Fig. 3) — profile, decide, hold
// during scheduling overhead, run steady state, feed measurements back
// — plus the time-varying load and power-budget patterns of §VIII-D
// and the per-slice recording the evaluation figures are built from.
package harness

import (
	"fmt"
	"math"

	"cuttlesys/internal/obs"
	"cuttlesys/internal/sim"
	"cuttlesys/internal/stats"
)

// SliceDur is the paper's decision quantum: 100 ms (§IV-B).
const SliceDur = 0.1

// Phase pairs an allocation with a duration inside one timeslice.
type Phase struct {
	Dur   float64
	Alloc sim.Allocation
}

// Scheduler is a per-timeslice resource manager. The driver calls
// ProfilePhases, executes them, hands the results to Decide, holds the
// previous allocation for the returned overhead, runs the decided
// allocation for the remainder of the slice and reports it back via
// EndSlice.
type Scheduler interface {
	// Name identifies the policy in experiment output.
	Name() string
	// ProfilePhases returns the measurement phases to execute at the
	// head of the slice; may be empty for policies that do not profile.
	ProfilePhases(qps, budgetW float64) []Phase
	// Decide consumes the profiling results and returns the steady
	// allocation plus the scheduling compute overhead (seconds) to
	// charge before it takes effect.
	Decide(profile []sim.PhaseResult, qps, budgetW float64) (sim.Allocation, float64)
	// EndSlice receives the steady-state result for feedback (matrix
	// updates, QoS tracking, relocation decisions).
	EndSlice(steady sim.PhaseResult, qps float64)
}

// MultiScheduler manages a machine with several latency-critical
// services (the paper's §VII-A generalisation); the qps slice carries
// one offered load per service, primary first.
type MultiScheduler interface {
	Name() string
	ProfilePhasesMulti(qps []float64, budgetW float64) []Phase
	DecideMulti(profile []sim.PhaseResult, qps []float64, budgetW float64) (sim.Allocation, float64)
	EndSliceMulti(steady sim.PhaseResult, qps []float64)
}

// ProfileValidator is an optional scheduler extension: a scheduler
// that can tell corrupt profiling telemetry from clean gets its
// profile phases re-executed (consuming real slice time) up to
// MaxProfileRetries times before the last sample set is handed to
// Decide regardless.
type ProfileValidator interface {
	ValidateProfile(profile []sim.PhaseResult) error
}

// MaxProfileRetries is the default bound on in-slice profiling
// re-sampling when a ProfileValidator rejects the samples. Each retry
// burns another profiling window of the slice, so the bound keeps a
// persistently corrupt sensor from consuming the whole quantum.
// Override per driver with Params.MaxProfileRetries.
const MaxProfileRetries = 2

// Params tunes a Driver's policy knobs. The zero value selects every
// documented default, so existing callers see identical behaviour.
type Params struct {
	// MaxProfileRetries bounds how many times a rejected profile is
	// re-taken within one slice. Zero selects the package default
	// (MaxProfileRetries = 2); a negative value disables retries
	// entirely — the first sample set stands however corrupt.
	//
	// Whatever the bound, retries additionally stop once re-profiling
	// would push the slice past half its quantum: a huge bound with a
	// persistently failing validator degrades to a truncated profile
	// plus a normal steady phase instead of profiling burning the
	// whole slice (and overrunning the clock grid).
	MaxProfileRetries int

	// Pipeline overlaps the scheduler's decision compute with the hold
	// phase: while a FixedOverhead scheduler computes slice t's
	// allocation, the machine already runs the previous allocation for
	// the (constant, known in advance) overhead window — which is
	// exactly what the hold phase models physically. The scheduler and
	// the machine share no state during the window, the hold result is
	// folded in after the join, and the hold interval is identical to
	// the serial schedule, so every SliceRecord is bit-identical to the
	// serial driver at any GOMAXPROCS. The overlap engages only when
	// the scheduler implements FixedOverhead, a previous allocation
	// exists, the overhead window fits the slice, and no observability
	// collector is attached (concurrent trace emission would make event
	// order run-dependent); otherwise the slice runs serially.
	Pipeline bool
}

// maxProfileRetries resolves the configured bound against defaults.
func (p Params) maxProfileRetries() int {
	switch {
	case p.MaxProfileRetries > 0:
		return p.MaxProfileRetries
	case p.MaxProfileRetries < 0:
		return 0
	}
	return MaxProfileRetries
}

// FixedOverhead is the optional scheduler extension phase pipelining
// requires: a scheduler whose decision compute cost is a known
// constant, independent of the profile contents. DecideMulti MUST
// return exactly DecisionOverheadSec() as its overhead on every path —
// the driver starts the hold phase for that duration before the
// decision completes, and a scheduler that reported a different cost
// afterwards would have been held for the wrong interval. The driver
// verifies the promise and fails the slice on a mismatch.
type FixedOverhead interface {
	DecisionOverheadSec() float64
}

// DegradedReporter is an optional scheduler extension reporting
// whether the scheduler spent the just-ended slice in a degraded
// (safe-fallback) mode; the harness records it per slice.
type DegradedReporter interface {
	Degraded() bool
}

// FaultInjector is the fault surface RunFaulted drives: hardware
// faults via sim.Injector, environmental perturbations (flash-crowd
// load, budget drops), and corruption of the scheduler's telemetry
// view. fault.Schedule implements it.
type FaultInjector interface {
	sim.Injector
	// LoadFactor multiplies every LC service's offered load at time t.
	LoadFactor(t float64) float64
	// BudgetFactor multiplies the power budget at time t.
	BudgetFactor(t float64) float64
	// ObservePhase returns the scheduler's (possibly corrupted) view
	// of a phase result; the original must not be mutated.
	ObservePhase(t float64, res sim.PhaseResult, profiling bool) sim.PhaseResult
	// ActiveKinds names the fault kinds active at time t, nil if none.
	ActiveKinds(t float64) []string
}

// LoadPattern yields the LC service's offered load fraction (of max
// QPS) at a simulation time.
type LoadPattern func(t float64) float64

// ConstantLoad offers a fixed load fraction.
func ConstantLoad(frac float64) LoadPattern {
	return func(float64) float64 { return frac }
}

// DiurnalLoad models the §VIII-D1 experiment: a smooth day/night swing
// between lo and hi load fractions with the given period (seconds).
func DiurnalLoad(lo, hi, period float64) LoadPattern {
	return func(t float64) float64 {
		phase := (1 - math.Cos(2*math.Pi*t/period)) / 2 // 0→1→0
		return lo + (hi-lo)*phase
	}
}

// StepLoad jumps from lo to hi during [from, to) — the load spike of
// the §VIII-D3 core-relocation experiment.
func StepLoad(lo, hi, from, to float64) LoadPattern {
	return func(t float64) float64 {
		if t >= from && t < to {
			return hi
		}
		return lo
	}
}

// Modulated multiplies a per-quantum factor table onto a base
// pattern: sample k covers times nearest k·quantum, clamped to the
// table, so a precomputed stochastic or trace-replay factor sequence
// becomes a pure function of simulated time. Rounding (not flooring)
// the quantum index keeps the lookup robust to the accumulated float
// error of a clock advanced by repeated quantum additions. An empty
// table leaves the base pattern unchanged.
func Modulated(base LoadPattern, factors []float64, quantum float64) LoadPattern {
	if len(factors) == 0 {
		return base
	}
	return func(t float64) float64 {
		k := int(math.Round(t / quantum))
		if k < 0 {
			k = 0
		} else if k >= len(factors) {
			k = len(factors) - 1
		}
		return base(t) * factors[k]
	}
}

// BudgetPattern yields the power budget (fraction of the machine's
// reference max power) at a simulation time.
type BudgetPattern func(t float64) float64

// ConstantBudget caps power at a fixed fraction.
func ConstantBudget(frac float64) BudgetPattern {
	return func(float64) float64 { return frac }
}

// StepBudget uses lo during [from, to) and hi elsewhere — the §VIII-D2
// power-budget step (90% → 60% → 90%).
func StepBudget(hi, lo, from, to float64) BudgetPattern {
	return func(t float64) float64 {
		if t >= from && t < to {
			return lo
		}
		return hi
	}
}

// SliceRecord captures one timeslice of an experiment.
type SliceRecord struct {
	T        float64 // slice start time, seconds
	LoadFrac float64
	QPS      float64
	BudgetW  float64

	P99Ms    float64 // LC tail latency over the slice, ms (0 if no LC)
	QoSMs    float64 // QoS target, ms
	Violated bool    // QoS violated this slice

	// Per-extra-service tail latency (multi-service machines).
	ExtraP99Ms    []float64
	ExtraQoSMs    []float64
	ExtraViolated []bool
	ExtraLCCores  []int
	ExtraLCCfg    []string

	BatchInstrB []float64 // per-job instructions executed, billions
	TotalInstrB float64
	GmeanBIPS   float64 // geometric mean of per-job throughput

	AvgPowerW   float64
	OverBudget  bool
	LCCores     int
	LCCoreCfg   string // chosen LC core config, e.g. "{6,2,6}"
	LCCacheWays float64

	// OverheadSec is the scheduling compute the scheduler charged for
	// this slice's decision, whether or not the hold phase fit.
	OverheadSec float64

	// Resilience telemetry (zero-valued on fault-free runs).
	FaultKinds     []string // fault kinds active this slice, nil if none
	FailedCores    int      // fail-stopped cores observed in steady state
	Degraded       bool     // scheduler ran in safe-fallback mode
	ProfileRetries int      // in-slice profiling retries this slice
}

// Result aggregates an experiment run.
type Result struct {
	Scheduler string
	Slices    []SliceRecord
}

// TotalInstrB sums batch instructions over the whole run — the §VII-B
// comparison metric ("total useful work executed over the same time").
func (r *Result) TotalInstrB() float64 {
	total := 0.0
	for _, s := range r.Slices {
		total += s.TotalInstrB
	}
	return total
}

// QoSViolations counts slices in which any service's p99 exceeded its
// target.
func (r *Result) QoSViolations() int {
	n := 0
	for _, s := range r.Slices {
		violated := s.Violated
		for _, v := range s.ExtraViolated {
			violated = violated || v
		}
		if violated {
			n++
		}
	}
	return n
}

// MeanGmeanBIPS averages the per-slice geometric-mean batch throughput.
func (r *Result) MeanGmeanBIPS() float64 {
	vals := make([]float64, 0, len(r.Slices))
	for _, s := range r.Slices {
		vals = append(vals, s.GmeanBIPS)
	}
	return stats.Mean(vals)
}

// WorstP99Ratio returns the maximum p99/QoS ratio across slices.
func (r *Result) WorstP99Ratio() float64 {
	worst := 0.0
	for _, s := range r.Slices {
		if s.QoSMs > 0 {
			if ratio := s.P99Ms / s.QoSMs; ratio > worst {
				worst = ratio
			}
		}
	}
	return worst
}

// BudgetViolations counts slices whose average power exceeded budget
// by more than tolFrac.
func (r *Result) BudgetViolations(tolFrac float64) int {
	n := 0
	for _, s := range r.Slices {
		if s.AvgPowerW > s.BudgetW*(1+tolFrac) {
			n++
		}
	}
	return n
}

func (s *SliceRecord) anyViolated() bool {
	if s.Violated {
		return true
	}
	for _, v := range s.ExtraViolated {
		if v {
			return true
		}
	}
	return false
}

func (s *SliceRecord) faultActive() bool {
	return len(s.FaultKinds) > 0 || s.FailedCores > 0
}

// RecoverySlices is the QoS-violation recovery time: the length of the
// longest run of consecutive violated slices that started while a
// fault was active. A violation chain that outlives its fault still
// counts in full — that tail is exactly the recovery the metric
// measures. Zero means every fault was absorbed without a violation.
func (r *Result) RecoverySlices() int {
	longest, cur := 0, 0
	inChain := false
	for i := range r.Slices {
		s := &r.Slices[i]
		switch {
		case s.anyViolated() && (s.faultActive() || inChain):
			if !inChain {
				inChain = true
				cur = 0
			}
			cur++
			if cur > longest {
				longest = cur
			}
		case !s.anyViolated():
			inChain = false
			cur = 0
		}
	}
	return longest
}

// FaultAttributedViolations counts violated slices attributable to a
// fault: the fault was active during the slice, or the slice continues
// an unbroken violation chain that began under one.
func (r *Result) FaultAttributedViolations() int {
	n := 0
	inChain := false
	for i := range r.Slices {
		s := &r.Slices[i]
		switch {
		case s.anyViolated() && (s.faultActive() || inChain):
			inChain = true
			n++
		case !s.anyViolated():
			inChain = false
		}
	}
	return n
}

// DegradedOccupancy is the fraction of slices the scheduler spent in
// its safe-fallback (degraded) mode — time not spent optimising.
func (r *Result) DegradedOccupancy() float64 {
	if len(r.Slices) == 0 {
		return 0
	}
	n := 0
	for i := range r.Slices {
		if r.Slices[i].Degraded {
			n++
		}
	}
	return float64(n) / float64(len(r.Slices))
}

// Run executes slices timeslices of the scheduler against the machine.
// The load and budget patterns are sampled at each slice start; budget
// is expressed as a fraction of the machine's reference MaxPowerW. It
// returns an error (not a partial result) for invalid experiment
// setups: a non-positive slice count, fewer load patterns than
// services, or a scheduler emitting a non-positive profile duration.
func Run(m *sim.Machine, s Scheduler, slices int, load LoadPattern, budget BudgetPattern) (*Result, error) {
	return runImpl(m, singleAdapter{s}, slices, []LoadPattern{load}, budget, nil, nil)
}

// RunMulti executes a multi-service experiment: one load pattern per
// latency-critical service, primary first.
func RunMulti(m *sim.Machine, s MultiScheduler, slices int, loads []LoadPattern, budget BudgetPattern) (*Result, error) {
	return runImpl(m, s, slices, loads, budget, nil, nil)
}

// RunFaulted is Run under a fault injector: hardware faults reach the
// machine, flash crowds and budget drops perturb the environment, and
// telemetry corruption is applied to the scheduler's view of each
// phase while the records keep the physical truth. A nil injector (or
// one with an empty schedule) reproduces Run exactly, bit for bit.
func RunFaulted(m *sim.Machine, s Scheduler, slices int, load LoadPattern, budget BudgetPattern, inj FaultInjector) (*Result, error) {
	return runImpl(m, singleAdapter{s}, slices, []LoadPattern{load}, budget, inj, nil)
}

// RunFaultedMulti is RunMulti under a fault injector.
func RunFaultedMulti(m *sim.Machine, s MultiScheduler, slices int, loads []LoadPattern, budget BudgetPattern, inj FaultInjector) (*Result, error) {
	return runImpl(m, s, slices, loads, budget, inj, nil)
}

// Single lifts a single-service Scheduler into the MultiScheduler
// interface, forwarding the optional resilience extensions
// (ProfileValidator, DegradedReporter) when the scheduler implements
// them. Multi-machine drivers such as internal/fleet use it to reuse
// single-service policies unchanged.
func Single(s Scheduler) MultiScheduler { return singleAdapter{s} }

// singleAdapter lifts a single-service Scheduler into the multi
// interface for the shared driver, forwarding the optional
// resilience extensions with safe defaults.
type singleAdapter struct{ s Scheduler }

func (a singleAdapter) Name() string { return a.s.Name() }
func (a singleAdapter) ProfilePhasesMulti(qps []float64, budgetW float64) []Phase {
	return a.s.ProfilePhases(first(qps), budgetW)
}
func (a singleAdapter) DecideMulti(profile []sim.PhaseResult, qps []float64, budgetW float64) (sim.Allocation, float64) {
	return a.s.Decide(profile, first(qps), budgetW)
}
func (a singleAdapter) EndSliceMulti(steady sim.PhaseResult, qps []float64) {
	a.s.EndSlice(steady, first(qps))
}
func (a singleAdapter) ValidateProfile(profile []sim.PhaseResult) error {
	if v, ok := a.s.(ProfileValidator); ok {
		return v.ValidateProfile(profile)
	}
	return nil
}
func (a singleAdapter) Degraded() bool {
	if d, ok := a.s.(DegradedReporter); ok {
		return d.Degraded()
	}
	return false
}
func (a singleAdapter) DecisionOverheadSec() float64 {
	if f, ok := a.s.(FixedOverhead); ok {
		return f.DecisionOverheadSec()
	}
	return 0 // not fixed-overhead: pipelining stays off (the gate requires > 0)
}
func (a singleAdapter) SetCollector(c obs.Collector) {
	if o, ok := a.s.(Observable); ok {
		o.SetCollector(c)
	}
}

func first(qps []float64) float64 {
	if len(qps) == 0 {
		return 0
	}
	return qps[0]
}

func runImpl(m *sim.Machine, s MultiScheduler, slices int, loads []LoadPattern, budget BudgetPattern, inj FaultInjector, c obs.Collector) (*Result, error) {
	if slices <= 0 {
		return nil, fmt.Errorf("harness: non-positive slice count %d", slices)
	}
	if budget == nil {
		return nil, fmt.Errorf("harness: nil budget pattern")
	}
	d, err := NewDriver(m, s, inj)
	if err != nil {
		return nil, err
	}
	defer d.Detach()
	if c != nil {
		d.SetCollector(c)
	}
	extras := m.ExtraLCs()
	if len(loads) < d.nServices {
		return nil, fmt.Errorf("harness: %d load patterns for %d services", len(loads), d.nServices)
	}
	for i, load := range loads[:d.nServices] {
		if load == nil {
			return nil, fmt.Errorf("harness: load pattern %d is nil", i)
		}
	}
	maxPower := m.MaxPowerW()
	res := &Result{Scheduler: s.Name()}

	for sl := 0; sl < slices; sl++ {
		t := m.Now()
		loadFrac := 0.0
		qps := make([]float64, d.nServices)
		loadFactor, budgetFactor := 1.0, 1.0
		if inj != nil {
			loadFactor = inj.LoadFactor(t)
			budgetFactor = inj.BudgetFactor(t)
		}
		if m.LC() != nil {
			loadFrac = loads[0](t) * loadFactor
			qps[0] = loadFrac * m.LC().MaxQPS
		}
		for x, app := range extras {
			qps[x+1] = loads[x+1](t) * loadFactor * app.MaxQPS
		}
		budgetW := budget(t) * maxPower * budgetFactor

		rec, err := d.StepSlice(qps, loadFrac, budgetW)
		if err != nil {
			return nil, err
		}
		res.Slices = append(res.Slices, rec)
	}
	return res, nil
}

// A Driver steps one (machine, scheduler) pair a decision quantum at a
// time: the profile → decide → hold → steady sequence of §IV-B (Fig. 3)
// factored out of Run so callers that interleave many machines —
// internal/fleet's cluster stepping — reuse the exact slice semantics
// per machine. The Driver owns the cross-slice state Run used to keep
// in its loop (the previous allocation held during scheduling
// overhead) plus the optional fault injector, which it attaches to the
// machine for its lifetime.
type Driver struct {
	m         *sim.Machine
	s         MultiScheduler
	inj       FaultInjector
	validator ProfileValidator
	reporter  DegradedReporter
	fixed     FixedOverhead
	nServices int
	prevAlloc *sim.Allocation
	params    Params

	// overlapQuanta counts slices whose decision compute ran
	// concurrently with the hold phase (Params.Pipeline).
	overlapQuanta uint64

	// lastBuilds/lastLookups/lastOverlap hold the previous slice's
	// surface-table and pipeline counters so emitSliceTelemetry can
	// emit per-slice deltas as monotone obs counters.
	lastBuilds, lastLookups, lastOverlap uint64

	// Observability: obs is the machine-level collector (Nop unless
	// SetCollector attached one), scope the slice-positioned view the
	// scheduler shares, sliceIdx the driver-local quantum counter
	// stamped onto events.
	obs      obs.Collector
	scope    *obs.Scope
	sliceIdx int
}

// NewDriver validates the pair and attaches inj (which may be nil) to
// the machine. Callers that keep the machine beyond the driver's life
// should call Detach when done so the injector does not outlive them.
func NewDriver(m *sim.Machine, s MultiScheduler, inj FaultInjector) (*Driver, error) {
	if m == nil {
		return nil, fmt.Errorf("harness: nil machine")
	}
	if s == nil {
		return nil, fmt.Errorf("harness: nil scheduler")
	}
	nServices := len(m.ExtraLCs())
	if m.LC() != nil {
		nServices++
	}
	if inj != nil {
		m.SetInjector(inj)
	}
	d := &Driver{m: m, s: s, inj: inj, nServices: nServices}
	d.obs = obs.Nop
	d.scope = obs.NewScope(nil)
	d.validator, _ = s.(ProfileValidator)
	d.reporter, _ = s.(DegradedReporter)
	d.fixed, _ = s.(FixedOverhead)
	return d, nil
}

// OverlapQuanta reports how many slices ran their decision compute
// concurrently with the hold phase.
func (d *Driver) OverlapQuanta() uint64 { return d.overlapQuanta }

// SetParams replaces the driver's policy knobs; the zero Params
// restores the defaults. Call between slices, not mid-step.
func (d *Driver) SetParams(p Params) { d.params = p }

// Machine returns the driven machine.
func (d *Driver) Machine() *sim.Machine { return d.m }

// Scheduler returns the driven scheduler.
func (d *Driver) Scheduler() MultiScheduler { return d.s }

// NumServices is the number of latency-critical services on the
// machine — the length StepSlice expects of its qps slice.
func (d *Driver) NumServices() int { return d.nServices }

// Detach removes the driver's fault injector from the machine.
func (d *Driver) Detach() {
	if d.inj != nil {
		d.m.SetInjector(nil)
	}
}

// StepSlice executes one decision quantum. qps carries one offered
// load per latency-critical service (primary first), already including
// any environmental perturbation; loadFrac is the primary service's
// offered fraction of its max QPS (recorded, not recomputed, so
// callers control the exact value); budgetW is the slice's power
// budget in watts. The machine's clock supplies the slice start time.
func (d *Driver) StepSlice(qps []float64, loadFrac, budgetW float64) (SliceRecord, error) {
	m, s, inj := d.m, d.s, d.inj
	if len(qps) < d.nServices {
		return SliceRecord{}, fmt.Errorf("harness: %d offered loads for %d services", len(qps), d.nServices)
	}
	extras := m.ExtraLCs()
	t := m.Now()
	traced := d.obs.Enabled()
	d.scope.SetContext(t, d.sliceIdx)
	sliceWall := obs.BeginWall(d.obs)
	qosMs := 0.0
	if m.LC() != nil {
		qosMs = m.LC().QoSTargetMs
	}

	rec := SliceRecord{
		T: t, LoadFrac: loadFrac, QPS: first(qps), QoSMs: qosMs, BudgetW: budgetW,
	}
	if inj != nil {
		rec.FaultKinds = inj.ActiveKinds(t)
	}

	run := func(alloc sim.Allocation, dur float64, qps []float64) sim.PhaseResult {
		if len(extras) == 0 {
			return m.Run(alloc, dur, first(qps))
		}
		return m.RunMulti(alloc, dur, qps)
	}
	// observe yields the scheduler's view of a phase result — the
	// physical truth unless a telemetry fault is active.
	observe := func(t float64, pr sim.PhaseResult, profiling bool) sim.PhaseResult {
		if inj == nil {
			return pr
		}
		return inj.ObservePhase(t, pr, profiling)
	}

	var (
		sojourns  []float64
		extraSoj  = make([][]float64, len(extras))
		energyJ   float64
		elapsed   float64
		instrB    []float64
		bipsAccum []float64
	)
	nBatch := len(m.Batch())
	instrB = make([]float64, nBatch)
	bipsAccum = make([]float64, nBatch)

	accumulate := func(pr sim.PhaseResult) {
		sojourns = append(sojourns, pr.Sojourns...)
		for x := range pr.ExtraSojourns {
			extraSoj[x] = append(extraSoj[x], pr.ExtraSojourns[x]...)
		}
		energyJ += pr.PowerW * pr.Dur
		elapsed += pr.Dur
		for i := range instrB {
			instrB[i] += pr.BatchInstrB[i]
			bipsAccum[i] += pr.BatchBIPS[i] * pr.Dur
		}
	}

	// 1. Profiling phases. A ProfileValidator scheduler gets corrupt
	// samples re-taken (bounded, and each retry consumes slice time).
	profPhases := s.ProfilePhasesMulti(qps, budgetW)
	maxRetries := d.params.maxProfileRetries()
	profDur := 0.0
	for _, ph := range profPhases {
		profDur += ph.Dur
	}
	var profResults []sim.PhaseResult
	for attempt := 0; ; attempt++ {
		profResults = make([]sim.PhaseResult, 0, len(profPhases))
		for wi, ph := range profPhases {
			if ph.Dur <= 0 {
				return SliceRecord{}, fmt.Errorf("harness: %s: profile phase with non-positive duration %v",
					s.Name(), ph.Dur)
			}
			winT := t + elapsed
			pr := run(ph.Alloc, ph.Dur, qps)
			profResults = append(profResults, observe(t, pr, true))
			accumulate(pr)
			if traced {
				d.scope.Emit(obs.Span(obs.SpanProfile, winT, ph.Dur).
					With("window", obs.Itoa(wi)).With("attempt", obs.Itoa(attempt)))
			}
		}
		if len(profPhases) == 0 || d.validator == nil ||
			attempt >= maxRetries || d.validator.ValidateProfile(profResults) == nil {
			rec.ProfileRetries = attempt
			break
		}
		// Graceful exhaustion: however large the configured bound,
		// another full re-profile must not push the slice past half its
		// quantum — the decision and steady phase still have to run on
		// the normal clock grid. The last (corrupt) sample set stands.
		if elapsed+profDur > SliceDur/2 {
			rec.ProfileRetries = attempt
			break
		}
	}

	// 2+3. Decision, and the scheduling-overhead hold: the machine
	// keeps running under the previous allocation while the runtime
	// computes. With Params.Pipeline and a FixedOverhead scheduler the
	// two genuinely overlap — the hold duration is known before the
	// decision starts, the machine and the scheduler share no state
	// during the window, and the hold result is accumulated after the
	// join, so the slice is bit-identical to the serial path.
	var alloc sim.Allocation
	var overhead float64
	pipelined := false
	if d.params.Pipeline && d.fixed != nil && d.prevAlloc != nil && !d.obs.Enabled() {
		if oh := d.fixed.DecisionOverheadSec(); oh > 0 && elapsed+oh < SliceDur {
			done := make(chan struct{})
			// The spawned goroutine is the ONLY one touching the
			// scheduler during the window: the main goroutine runs the
			// hold on the machine, joins on done before reading alloc,
			// and only then accumulates. Scheduler-receiver writes are
			// therefore single-threaded, just on the other side of the
			// fork — no shared mutation for lockregion to order.
			//lint:allow lockregion decide goroutine exclusively owns the scheduler until the join; machine state stays on the spawning goroutine
			go func() {
				defer close(done)
				alloc, overhead = s.DecideMulti(profResults, qps, budgetW)
			}()
			holdRes := run(*d.prevAlloc, oh, qps)
			<-done
			if overhead != oh {
				return SliceRecord{}, fmt.Errorf("harness: %s: FixedOverhead promised %v but Decide charged %v",
					s.Name(), oh, overhead)
			}
			d.chargeOverhead(&rec, t+elapsed, overhead)
			accumulate(holdRes)
			d.overlapQuanta++
			pipelined = true
		}
	}
	if !pipelined {
		decideWall := obs.BeginWall(d.obs)
		alloc, overhead = s.DecideMulti(profResults, qps, budgetW)
		decideWall.End(d.obs, "harness.decide")
		d.chargeOverhead(&rec, t+elapsed, overhead)
		if overhead > 0 && elapsed+overhead < SliceDur {
			hold := alloc
			if d.prevAlloc != nil {
				hold = *d.prevAlloc
			}
			holdT := t + elapsed
			accumulate(run(hold, overhead, qps))
			if traced {
				d.scope.Emit(obs.Span(obs.SpanHold, holdT, overhead))
			}
		}
	}

	// 4. Steady state for the remainder of the slice.
	if remain := SliceDur - elapsed; remain > 1e-9 {
		steadyT := t + elapsed
		steady := run(alloc, remain, qps)
		if traced {
			d.scope.Emit(obs.Span(obs.SpanSteady, steadyT, remain))
		}
		accumulate(steady)
		rec.FailedCores = steady.FailedLC + steady.FailedBatch
		s.EndSliceMulti(observe(t, steady, false), qps)
	} else {
		// Degenerate: profiling consumed the slice (Flicker mode a).
		s.EndSliceMulti(sim.PhaseResult{Dur: 0, BatchBIPS: make([]float64, nBatch), BatchInstrB: make([]float64, nBatch)}, qps)
	}
	if d.reporter != nil {
		rec.Degraded = d.reporter.Degraded()
	}
	prev := alloc
	d.prevAlloc = &prev

	// Record.
	rec.P99Ms = stats.P99(sojourns) * 1e3
	rec.Violated = qosMs > 0 && rec.P99Ms > qosMs
	for x, app := range extras {
		p99 := stats.P99(extraSoj[x]) * 1e3
		rec.ExtraP99Ms = append(rec.ExtraP99Ms, p99)
		rec.ExtraQoSMs = append(rec.ExtraQoSMs, app.QoSTargetMs)
		rec.ExtraViolated = append(rec.ExtraViolated, p99 > app.QoSTargetMs)
		rec.ExtraLCCores = append(rec.ExtraLCCores, alloc.ExtraLC[x].Cores)
		rec.ExtraLCCfg = append(rec.ExtraLCCfg, alloc.ExtraLC[x].Core.String())
	}
	rec.BatchInstrB = instrB
	rec.TotalInstrB = stats.Sum(instrB)
	perJob := make([]float64, nBatch)
	for i := range perJob {
		perJob[i] = bipsAccum[i] / SliceDur
	}
	rec.GmeanBIPS = stats.GeoMean(perJob)
	rec.AvgPowerW = energyJ / elapsed
	rec.OverBudget = rec.AvgPowerW > budgetW
	rec.LCCores = alloc.LCCores
	rec.LCCoreCfg = alloc.LCCore.String()
	rec.LCCacheWays = alloc.LCCache.Ways()
	if traced {
		d.emitSliceTelemetry(&rec)
	}
	sliceWall.End(d.obs, "harness.slice")
	d.sliceIdx++
	return rec, nil
}

// String summarises a result for quick inspection.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d slices, %.1f Binstr, %d QoS violations, worst p99/QoS %.2f",
		r.Scheduler, len(r.Slices), r.TotalInstrB(), r.QoSViolations(), r.WorstP99Ratio())
}
