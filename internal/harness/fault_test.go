package harness

import (
	"errors"
	"reflect"
	"testing"

	"cuttlesys/internal/config"
	"cuttlesys/internal/fault"
	"cuttlesys/internal/sim"
)

// TestRunFaultedEmptyScheduleMatchesRun is the no-op guarantee: an
// empty fault schedule must reproduce Run bit for bit — same records,
// same machine state, no extra RNG draws anywhere.
func TestRunFaultedEmptyScheduleMatchesRun(t *testing.T) {
	mkSched := func() *staticScheduler {
		prof := sim.Uniform(16, true, 16, config.Narrowest, config.OneWay)
		return &staticScheduler{
			alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
			profiles: []Phase{{Dur: 0.001, Alloc: prof}, {Dur: 0.001, Alloc: prof}},
			overhead: 0.005,
		}
	}
	plain, err := Run(testMachine(t), mkSched(), 6, ConstantLoad(0.7), ConstantBudget(0.8))
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := RunFaulted(testMachine(t), mkSched(), 6,
		ConstantLoad(0.7), ConstantBudget(0.8), fault.MustSchedule(99))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, faulted) {
		t.Fatalf("empty schedule diverged from plain run:\nplain:   %+v\nfaulted: %+v", plain, faulted)
	}
	nilInj, err := RunFaulted(testMachine(t), mkSched(), 6,
		ConstantLoad(0.7), ConstantBudget(0.8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, nilInj) {
		t.Fatal("nil injector diverged from plain run")
	}
}

func TestRunFaultedRecordsFaultTelemetry(t *testing.T) {
	m := testMachine(t)
	s := &staticScheduler{alloc: sim.Uniform(16, true, 16, config.Widest, config.OneWay)}
	inj := fault.MustSchedule(4,
		fault.Event{Kind: fault.CoreFailStop, Start: 0.2, End: 0.4, Cores: 4, BatchCores: 2})
	res, err := RunFaulted(m, s, 6, ConstantLoad(0.7), ConstantBudget(0.8), inj)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.Slices {
		inWindow := rec.T >= 0.2 && rec.T < 0.4
		if inWindow {
			if !reflect.DeepEqual(rec.FaultKinds, []string{"core-failstop"}) {
				t.Fatalf("slice %d: fault kinds %v", i, rec.FaultKinds)
			}
			if rec.FailedCores != 6 {
				t.Fatalf("slice %d: %d failed cores, want 6", i, rec.FailedCores)
			}
		} else {
			if rec.FaultKinds != nil || rec.FailedCores != 0 {
				t.Fatalf("slice %d: fault telemetry outside window: %v/%d",
					i, rec.FaultKinds, rec.FailedCores)
			}
		}
	}
}

func TestFlashCrowdAndBudgetDropPerturbEnvironment(t *testing.T) {
	m := testMachine(t)
	s := &staticScheduler{alloc: sim.Uniform(16, true, 16, config.Widest, config.OneWay)}
	inj := fault.MustSchedule(4,
		fault.Event{Kind: fault.FlashCrowd, Start: 0.1, End: 0.3, Factor: 1.5},
		fault.Event{Kind: fault.BudgetDrop, Start: 0.3, End: 0.5, Factor: 0.5})
	res, err := RunFaulted(m, s, 6, ConstantLoad(0.5), ConstantBudget(0.8), inj)
	if err != nil {
		t.Fatal(err)
	}
	base := res.Slices[0]
	crowd := res.Slices[1]  // t=0.1
	capped := res.Slices[3] // t=0.3
	if crowd.QPS <= base.QPS*1.4 {
		t.Fatalf("flash crowd did not raise offered load: %v vs %v", crowd.QPS, base.QPS)
	}
	if capped.BudgetW >= base.BudgetW*0.6 {
		t.Fatalf("budget drop did not cut the budget: %v vs %v", capped.BudgetW, base.BudgetW)
	}
}

// validatingScheduler rejects profiles a fixed number of times to
// exercise the bounded retry loop.
type validatingScheduler struct {
	staticScheduler
	rejections int
	validated  int
}

func (v *validatingScheduler) ValidateProfile(profile []sim.PhaseResult) error {
	v.validated++
	if v.validated <= v.rejections {
		return errors.New("synthetic corruption")
	}
	return nil
}

func TestProfileRetryBounded(t *testing.T) {
	prof := sim.Uniform(16, true, 16, config.Narrowest, config.OneWay)
	mk := func(rejections int) *validatingScheduler {
		return &validatingScheduler{
			staticScheduler: staticScheduler{
				alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
				profiles: []Phase{{Dur: 0.001, Alloc: prof}, {Dur: 0.001, Alloc: prof}},
			},
			rejections: rejections,
		}
	}

	// One rejection: a single retry, and the retry consumes slice time.
	s := mk(1)
	res, err := Run(testMachine(t), s, 1, ConstantLoad(0.5), ConstantBudget(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slices[0].ProfileRetries != 1 {
		t.Fatalf("ProfileRetries = %d, want 1", res.Slices[0].ProfileRetries)
	}
	if got, want := s.steadies[0].Dur, SliceDur-4*0.001; got > want+1e-9 {
		t.Fatalf("retry did not consume slice time: steady %v, want <= %v", got, want)
	}

	// Persistent rejection: bounded at MaxProfileRetries, run continues.
	s = mk(1000)
	res, err = Run(testMachine(t), s, 1, ConstantLoad(0.5), ConstantBudget(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slices[0].ProfileRetries != MaxProfileRetries {
		t.Fatalf("ProfileRetries = %d, want %d", res.Slices[0].ProfileRetries, MaxProfileRetries)
	}
	if s.decides != 1 {
		t.Fatal("decision skipped after exhausted retries")
	}
}

// TestProfileRetryParams covers the configurable bound: an explicit
// Params.MaxProfileRetries is honoured, a negative bound disables
// retries, and a huge bound with a permanently failing validator
// degrades gracefully — re-profiling stops at half the quantum, the
// decision and steady phase still run, and the slice stays exactly one
// SliceDur on the clock grid.
func TestProfileRetryParams(t *testing.T) {
	prof := sim.Uniform(16, true, 16, config.Narrowest, config.OneWay)
	mk := func(rejections int) *validatingScheduler {
		return &validatingScheduler{
			staticScheduler: staticScheduler{
				alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
				profiles: []Phase{{Dur: 0.001, Alloc: prof}, {Dur: 0.001, Alloc: prof}},
			},
			rejections: rejections,
		}
	}
	step := func(s *validatingScheduler, p Params) SliceRecord {
		t.Helper()
		m := testMachine(t)
		d, err := NewDriver(m, Single(s), nil)
		if err != nil {
			t.Fatal(err)
		}
		d.SetParams(p)
		rec, err := d.StepSlice([]float64{0.5 * m.LC().MaxQPS}, 0.5, 0.8*m.MaxPowerW())
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Now() - rec.T; got > SliceDur+1e-9 {
			t.Fatalf("slice overran the quantum: %v elapsed", got)
		}
		if s.decides != 1 {
			t.Fatalf("decision phases: %d, want 1", s.decides)
		}
		if len(s.steadies) != 1 || s.steadies[0].Dur <= 0 {
			t.Fatal("steady phase did not run")
		}
		return rec
	}

	// Explicit bound honoured.
	if rec := step(mk(1000), Params{MaxProfileRetries: 5}); rec.ProfileRetries != 5 {
		t.Fatalf("ProfileRetries = %d, want 5", rec.ProfileRetries)
	}
	// Negative bound disables retries.
	if rec := step(mk(1000), Params{MaxProfileRetries: -1}); rec.ProfileRetries != 0 {
		t.Fatalf("ProfileRetries = %d with retries disabled", rec.ProfileRetries)
	}
	// Zero selects the package default.
	if rec := step(mk(1000), Params{}); rec.ProfileRetries != MaxProfileRetries {
		t.Fatalf("ProfileRetries = %d, want default %d", rec.ProfileRetries, MaxProfileRetries)
	}
	// Huge bound, persistent corruption: the half-quantum guard stops
	// re-profiling long before the bound, leaving the slice intact.
	rec := step(mk(1<<30), Params{MaxProfileRetries: 1 << 30})
	if rec.ProfileRetries >= 1<<30 {
		t.Fatal("retry bound was not cut short by the slice-time guard")
	}
	if rec.ProfileRetries < MaxProfileRetries {
		t.Fatalf("guard fired too early: %d retries", rec.ProfileRetries)
	}
}

// TestFaultRecoveryAtFinalQuantum pins the window edge against the
// slice grid: an event whose End lands exactly on the final quantum's
// start time is fully recovered for that quantum (windows are
// half-open), while an event covering the run's tail stays active
// through the last slice. The boundary is probed from a clean run so
// the test is immune to float drift in the accumulated clock.
func TestFaultRecoveryAtFinalQuantum(t *testing.T) {
	const slices = 6
	mkSched := func() *staticScheduler {
		return &staticScheduler{alloc: sim.Uniform(16, true, 16, config.Widest, config.OneWay)}
	}
	probe, err := Run(testMachine(t), mkSched(), slices, ConstantLoad(0.5), ConstantBudget(0.8))
	if err != nil {
		t.Fatal(err)
	}
	lastT := probe.Slices[slices-1].T

	inj := fault.MustSchedule(4,
		fault.Event{Kind: fault.CoreFailStop, Start: 0, End: lastT, Cores: 4},
		fault.Event{Kind: fault.CoreFailSlow, Start: lastT, End: lastT + 1, Factor: 0.5})
	res, err := RunFaulted(testMachine(t), mkSched(), slices,
		ConstantLoad(0.5), ConstantBudget(0.8), inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < slices-1; i++ {
		if got := res.Slices[i].FailedCores; got != 4 {
			t.Fatalf("slice %d: %d failed cores, want 4", i, got)
		}
	}
	last := res.Slices[slices-1]
	if last.FailedCores != 0 {
		t.Fatalf("final quantum still fail-stopped: %d cores", last.FailedCores)
	}
	if !reflect.DeepEqual(last.FaultKinds, []string{"core-failslow"}) {
		t.Fatalf("final quantum fault kinds %v, want only core-failslow", last.FaultKinds)
	}
}

// TestComposedInjectorOnDrainedMachine drives a fault.Compose stack —
// a standing chaos schedule under a drill's budget squeeze — on a
// machine offered zero load, the control plane's drain posture. The
// slice loop must stay well-defined (no violations from phantom
// traffic), both layers' effects must land, and wrapping a single
// schedule with a nil overlay must be a bit-exact no-op.
func TestComposedInjectorOnDrainedMachine(t *testing.T) {
	// The composite satisfies the harness's injector surface directly.
	base := fault.MustSchedule(4,
		fault.Event{Kind: fault.CoreFailStop, Start: 0.2, End: 0.4, Cores: 4})
	drill := fault.MustSchedule(5,
		fault.Event{Kind: fault.BudgetDrop, Start: 0.3, End: 0.5, Factor: 0.5})
	var inj FaultInjector = fault.Compose(base, drill)

	mkSched := func() *staticScheduler {
		return &staticScheduler{alloc: sim.Uniform(16, true, 16, config.Widest, config.OneWay)}
	}
	res, err := RunFaulted(testMachine(t), mkSched(), 6,
		ConstantLoad(0), ConstantBudget(0.8), inj)
	if err != nil {
		t.Fatal(err)
	}
	sawStop, sawDrop := false, false
	for i, rec := range res.Slices {
		if rec.QPS != 0 {
			t.Fatalf("slice %d: drained machine offered %v qps", i, rec.QPS)
		}
		if rec.Violated {
			t.Fatalf("slice %d: zero-load slice violated QoS", i)
		}
		if rec.FailedCores == 4 {
			sawStop = true
		}
		if rec.BudgetW < res.Slices[0].BudgetW*0.6 {
			sawDrop = true
		}
	}
	if !sawStop || !sawDrop {
		t.Fatalf("composed layers missing on drained machine: failstop %v, budgetdrop %v",
			sawStop, sawDrop)
	}

	// Drain-aware wrapping cost: Compose(base, nil) is base itself.
	plain, err := RunFaulted(testMachine(t), mkSched(), 6,
		ConstantLoad(0.5), ConstantBudget(0.8), fault.MustSchedule(4,
			fault.Event{Kind: fault.CoreFailStop, Start: 0.2, End: 0.4, Cores: 4}))
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := RunFaulted(testMachine(t), mkSched(), 6,
		ConstantLoad(0.5), ConstantBudget(0.8), fault.Compose(fault.MustSchedule(4,
			fault.Event{Kind: fault.CoreFailStop, Start: 0.2, End: 0.4, Cores: 4}), nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, wrapped) {
		t.Fatal("nil-overlay composition diverged from the bare schedule")
	}
}

func TestResilienceMetrics(t *testing.T) {
	v := func(fault bool) SliceRecord {
		rec := SliceRecord{Violated: true, QoSMs: 1, P99Ms: 2}
		if fault {
			rec.FaultKinds = []string{"core-failstop"}
		}
		return rec
	}
	ok := SliceRecord{QoSMs: 1, P99Ms: 0.5}
	deg := SliceRecord{QoSMs: 1, P99Ms: 0.5, Degraded: true}

	r := &Result{Slices: []SliceRecord{
		ok,       // clean
		v(true),  // fault hits: chain starts
		v(true),  //
		v(false), // fault over, still violating: chain continues
		ok,       // recovered
		v(false), // violation with no fault: not attributed
		deg,      //
	}}
	if got := r.RecoverySlices(); got != 3 {
		t.Fatalf("RecoverySlices = %d, want 3", got)
	}
	if got := r.FaultAttributedViolations(); got != 3 {
		t.Fatalf("FaultAttributedViolations = %d, want 3", got)
	}
	if got := r.DegradedOccupancy(); got != 1.0/7 {
		t.Fatalf("DegradedOccupancy = %v, want 1/7", got)
	}
	empty := &Result{}
	if empty.RecoverySlices() != 0 || empty.FaultAttributedViolations() != 0 || empty.DegradedOccupancy() != 0 {
		t.Fatal("empty result has nonzero resilience metrics")
	}
}
