package harness

import (
	"cuttlesys/internal/obs"

	"cuttlesys/internal/sim"
)

// Observable is the optional extension a scheduler or fault injector
// implements to receive an observability collector. The driver wires
// it through SetCollector, so policies opt in without the Scheduler
// interfaces changing.
type Observable interface {
	SetCollector(c obs.Collector)
}

// SetCollector attaches an observability collector to the driver. The
// scheduler (if Observable) receives the driver's slice-scoped view,
// so events it marks during Decide inherit the slice's start time and
// index; the fault injector (if Observable) receives the machine-level
// collector, since its events carry their own fault-schedule times.
// Passing nil detaches (reverts to the zero-cost no-op collector).
func (d *Driver) SetCollector(c obs.Collector) {
	d.obs = obs.OrNop(c)
	d.scope = obs.NewScope(d.obs)
	if o, ok := d.s.(Observable); ok {
		o.SetCollector(d.scope)
	}
	if o, ok := d.inj.(Observable); ok {
		o.SetCollector(d.obs)
	}
}

// RunTraced is RunFaultedMulti with an observability collector
// attached to the driver — and, through it, to the scheduler and
// injector when they implement Observable. A nil injector or nil
// collector degrade to the untraced, fault-free behaviour exactly.
func RunTraced(m *sim.Machine, s MultiScheduler, slices int, loads []LoadPattern, budget BudgetPattern, inj FaultInjector, c obs.Collector) (*Result, error) {
	return runImpl(m, s, slices, loads, budget, inj, c)
}

// chargeOverhead routes the scheduler's modeled compute cost through
// the collector: the record's OverheadSec stays a pure function of the
// seed (the overhead is modeled, never measured), and the trace gets
// the decide span covering [t, t+overhead) — the interval the hold
// phase bridges.
func (d *Driver) chargeOverhead(rec *SliceRecord, t, overhead float64) {
	rec.OverheadSec = overhead
	if !d.obs.Enabled() {
		return
	}
	d.scope.Emit(obs.Span(obs.SpanDecide, t, overhead))
	d.obs.Add(obs.MetricOverheadSec, obs.NoLabels, overhead)
}

// emitSliceTelemetry folds the finished slice record into the trace
// and metrics — one slice span, a QoS-violation instant when the
// slice missed, and the per-slice series of DESIGN.md §10. Only
// called when the collector is enabled.
func (d *Driver) emitSliceTelemetry(rec *SliceRecord) {
	c := d.scope
	ev := obs.Span(obs.SpanSlice, rec.T, SliceDur).
		With("sched", d.s.Name()).With("cfg", rec.LCCoreCfg)
	if rec.Degraded {
		ev = ev.With("degraded", "1")
	}
	c.Emit(ev)
	if rec.anyViolated() {
		c.Emit(obs.Instant(obs.EventQoSViolation, rec.T).
			With("p99Ms", obs.Float(rec.P99Ms)).
			With("qosMs", obs.Float(rec.QoSMs)))
		c.Add(obs.MetricQoSViolations, obs.NoLabels, 1)
	}
	c.Add(obs.MetricSlices, obs.NoLabels, 1)
	c.Add(obs.MetricInstrB, obs.NoLabels, rec.TotalInstrB)
	c.Set(obs.MetricPowerW, obs.NoLabels, rec.AvgPowerW)
	c.Observe(obs.MetricP99Hist, obs.NoLabels, rec.P99Ms)
	if rec.ProfileRetries > 0 {
		c.Add(obs.MetricProfileRetries, obs.NoLabels, float64(rec.ProfileRetries))
	}
	if rec.Degraded {
		c.Add(obs.MetricDegradedSlices, obs.NoLabels, 1)
	}
	for _, k := range rec.FaultKinds {
		c.Add(obs.MetricFaultSlices, obs.Label("kind", k), 1)
	}
	d.emitHotpathTelemetry(c)
}

// emitHotpathTelemetry folds the fast-plane counters — surface-table
// builds and lookups from the machine, pipeline overlap quanta from
// the driver — into per-slice metric deltas. Counts are deterministic
// functions of the simulated work, so the series stay byte-stable
// across GOMAXPROCS like every other metric. (Overlap cannot advance
// while a collector is attached — pipelining is gated off under
// tracing to keep event order run-independent — but the delta is
// emitted symmetrically in case that gate ever loosens.)
func (d *Driver) emitHotpathTelemetry(c *obs.Scope) {
	builds, lookups := d.m.SurfaceStats()
	if delta := builds - d.lastBuilds; delta > 0 {
		c.Add(obs.MetricHotpathTableBuilds, obs.NoLabels, float64(delta))
	}
	if delta := lookups - d.lastLookups; delta > 0 {
		c.Add(obs.MetricHotpathLookups, obs.NoLabels, float64(delta))
	}
	if delta := d.overlapQuanta - d.lastOverlap; delta > 0 {
		c.Add(obs.MetricHotpathOverlap, obs.NoLabels, float64(delta))
	}
	d.lastBuilds, d.lastLookups, d.lastOverlap = builds, lookups, d.overlapQuanta
}
