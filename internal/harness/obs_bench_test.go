package harness

import (
	"testing"

	"cuttlesys/internal/config"
	"cuttlesys/internal/obs"
	"cuttlesys/internal/sim"
	"cuttlesys/internal/workload"
)

// benchDriver assembles a driver over the static scheduler: the
// scheduler does no real work, so the measurement isolates the
// harness hot path the observability layer instruments.
func benchDriver(b *testing.B, c obs.Collector) (*Driver, []float64, float64) {
	b.Helper()
	lc, err := workload.ByName("silo")
	if err != nil {
		b.Fatal(err)
	}
	_, test := workload.SplitTrainTest(1, 16)
	m := sim.New(sim.Spec{Seed: 1, LC: lc, Batch: workload.Mix(1, test, 16), Reconfigurable: true})
	s := &staticScheduler{
		alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
		overhead: 0.0005,
	}
	d, err := NewDriver(m, Single(s), nil)
	if err != nil {
		b.Fatal(err)
	}
	if c != nil {
		d.SetCollector(c)
	}
	qps := []float64{0.5 * lc.MaxQPS}
	return d, qps, 0.8 * m.MaxPowerW()
}

// BenchmarkObsOverhead measures what the observability layer adds to
// one harness timeslice. The disabled path routes every hook through
// the Nop collector, so /nop is the instrumented-but-untraced cost
// every ordinary run pays — its per-slice allocations must not exceed
// the uninstrumented baseline's. /recorder is the fully traced cost.
func BenchmarkObsOverhead(b *testing.B) {
	step := func(b *testing.B, c obs.Collector) {
		d, qps, budgetW := benchDriver(b, c)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.StepSlice(qps, 0.5, budgetW); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nop", func(b *testing.B) { step(b, nil) })
	b.Run("recorder", func(b *testing.B) { step(b, obs.NewRecorder()) })
}

// TestNopCollectorAddsNoSliceAllocations pins the zero-allocation
// claim the Nop path makes: the telemetry hooks a slice executes —
// scope staging, wall sampling, the span/metric emission guards —
// allocate nothing when the collector is disabled.
func TestNopCollectorAddsNoSliceAllocations(t *testing.T) {
	d := &Driver{obs: obs.Nop, scope: obs.NewScope(nil)}
	allocs := testing.AllocsPerRun(100, func() {
		d.scope.SetContext(0.1, 1)
		w := obs.BeginWall(d.obs)
		d.chargeOverhead(&SliceRecord{}, 0.1, 0.0005)
		w.End(d.obs, "harness.slice")
	})
	if allocs != 0 {
		t.Fatalf("nop telemetry path allocated %.1f times per slice, want 0", allocs)
	}
}
