package harness

import (
	"math"
	"strings"
	"testing"

	"cuttlesys/internal/config"
	"cuttlesys/internal/sim"
	"cuttlesys/internal/workload"
)

// staticScheduler applies one fixed allocation with optional profiling
// phases and overhead — enough to exercise every driver path.
type staticScheduler struct {
	alloc    sim.Allocation
	profiles []Phase
	overhead float64

	decides, ends int
	profResults   [][]sim.PhaseResult
	steadies      []sim.PhaseResult
}

func (s *staticScheduler) Name() string { return "static" }
func (s *staticScheduler) ProfilePhases(qps, budgetW float64) []Phase {
	return s.profiles
}
func (s *staticScheduler) Decide(profile []sim.PhaseResult, qps, budgetW float64) (sim.Allocation, float64) {
	s.decides++
	s.profResults = append(s.profResults, profile)
	return s.alloc, s.overhead
}
func (s *staticScheduler) EndSlice(steady sim.PhaseResult, qps float64) {
	s.ends++
	s.steadies = append(s.steadies, steady)
}

func testMachine(t *testing.T) *sim.Machine {
	t.Helper()
	lc, err := workload.ByName("silo")
	if err != nil {
		t.Fatal(err)
	}
	_, test := workload.SplitTrainTest(1, 16)
	return sim.New(sim.Spec{Seed: 1, LC: lc, Batch: workload.Mix(1, test, 16), Reconfigurable: true})
}

func TestRunBasicAccounting(t *testing.T) {
	m := testMachine(t)
	s := &staticScheduler{alloc: sim.Uniform(16, true, 16, config.Widest, config.OneWay)}
	res, err := Run(m, s, 5, ConstantLoad(0.5), ConstantBudget(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) != 5 || s.decides != 5 || s.ends != 5 {
		t.Fatalf("slices/decides/ends = %d/%d/%d", len(res.Slices), s.decides, s.ends)
	}
	for _, rec := range res.Slices {
		if math.Abs(rec.LoadFrac-0.5) > 1e-12 {
			t.Fatal("load pattern not applied")
		}
		if rec.TotalInstrB <= 0 || rec.AvgPowerW <= 0 {
			t.Fatal("missing accounting")
		}
		if rec.P99Ms <= 0 {
			t.Fatal("missing tail latency")
		}
	}
	if m.Now() < 0.5-1e-9 {
		t.Fatalf("machine advanced only %v s", m.Now())
	}
}

func TestProfilingPhasesExecuted(t *testing.T) {
	m := testMachine(t)
	prof := sim.Uniform(16, true, 16, config.Narrowest, config.OneWay)
	s := &staticScheduler{
		alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
		profiles: []Phase{{Dur: 0.001, Alloc: prof}, {Dur: 0.001, Alloc: prof}},
	}
	if _, err := Run(m, s, 2, ConstantLoad(0.5), ConstantBudget(0.8)); err != nil {
		t.Fatal(err)
	}
	if len(s.profResults[0]) != 2 {
		t.Fatalf("scheduler saw %d profile results, want 2", len(s.profResults[0]))
	}
	// A slice is still exactly SliceDur long: profiling is carved out of
	// it, so steady phases shrink accordingly.
	if got := s.steadies[0].Dur; math.Abs(got-(SliceDur-0.002)) > 1e-9 {
		t.Fatalf("steady duration %v, want %v", got, SliceDur-0.002)
	}
}

func TestOverheadHoldsPreviousAllocation(t *testing.T) {
	m := testMachine(t)
	s := &staticScheduler{
		alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
		overhead: 0.01,
	}
	res, err := Run(m, s, 3, ConstantLoad(0.5), ConstantBudget(0.8))
	if err != nil {
		t.Fatal(err)
	}
	// Steady state shrinks by the overhead.
	if got := s.steadies[1].Dur; math.Abs(got-(SliceDur-0.01)) > 1e-9 {
		t.Fatalf("steady duration %v, want %v", got, SliceDur-0.01)
	}
	if len(res.Slices) != 3 {
		t.Fatal("wrong slice count")
	}
}

func TestLoadPatterns(t *testing.T) {
	d := DiurnalLoad(0.2, 1.0, 1.0)
	if v := d(0); math.Abs(v-0.2) > 1e-9 {
		t.Fatalf("diurnal at t=0: %v", v)
	}
	if v := d(0.5); math.Abs(v-1.0) > 1e-9 {
		t.Fatalf("diurnal at half period: %v", v)
	}
	if v := d(1.0); math.Abs(v-0.2) > 1e-9 {
		t.Fatalf("diurnal at full period: %v", v)
	}
	st := StepLoad(0.2, 0.9, 1, 2)
	if st(0.5) != 0.2 || st(1.5) != 0.9 || st(2.5) != 0.2 {
		t.Fatal("step load wrong")
	}
	sb := StepBudget(0.9, 0.6, 1, 2)
	if sb(0.5) != 0.9 || sb(1.5) != 0.6 || sb(2.5) != 0.9 {
		t.Fatal("step budget wrong")
	}
	if ConstantLoad(0.7)(123) != 0.7 || ConstantBudget(0.5)(99) != 0.5 {
		t.Fatal("constant patterns wrong")
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Scheduler: "x", Slices: []SliceRecord{
		{TotalInstrB: 2, P99Ms: 5, QoSMs: 10, GmeanBIPS: 1, AvgPowerW: 50, BudgetW: 60},
		{TotalInstrB: 3, P99Ms: 20, QoSMs: 10, Violated: true, GmeanBIPS: 3, AvgPowerW: 70, BudgetW: 60},
	}}
	if r.TotalInstrB() != 5 {
		t.Fatal("TotalInstrB wrong")
	}
	if r.QoSViolations() != 1 {
		t.Fatal("QoSViolations wrong")
	}
	if r.WorstP99Ratio() != 2 {
		t.Fatal("WorstP99Ratio wrong")
	}
	if r.MeanGmeanBIPS() != 2 {
		t.Fatal("MeanGmeanBIPS wrong")
	}
	if r.BudgetViolations(0.05) != 1 {
		t.Fatal("BudgetViolations wrong")
	}
	if r.BudgetViolations(0.5) != 0 {
		t.Fatal("BudgetViolations tolerance ignored")
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
}

func TestRunErrorsOnBadSetup(t *testing.T) {
	m := testMachine(t)
	sched := &staticScheduler{alloc: sim.Uniform(16, true, 16, config.Widest, config.OneWay)}
	if _, err := Run(m, sched, 0, ConstantLoad(0.5), ConstantBudget(0.8)); err == nil {
		t.Fatal("Run(0 slices) did not error")
	}
	if _, err := Run(m, sched, -3, ConstantLoad(0.5), ConstantBudget(0.8)); err == nil {
		t.Fatal("Run(-3 slices) did not error")
	}
	// Fewer load patterns than services.
	if _, err := RunMulti(m, singleAdapter{sched}, 2, nil, ConstantBudget(0.8)); err == nil {
		t.Fatal("RunMulti without load patterns did not error")
	}
	// A scheduler emitting a broken profile phase.
	bad := &staticScheduler{
		alloc:    sim.Uniform(16, true, 16, config.Widest, config.OneWay),
		profiles: []Phase{{Dur: 0, Alloc: sim.Uniform(16, true, 16, config.Widest, config.OneWay)}},
	}
	if _, err := Run(m, bad, 2, ConstantLoad(0.5), ConstantBudget(0.8)); err == nil {
		t.Fatal("zero-duration profile phase did not error")
	}
	// The machine must still be usable after the failed setups.
	if _, err := Run(m, sched, 1, ConstantLoad(0.5), ConstantBudget(0.8)); err != nil {
		t.Fatalf("machine unusable after setup errors: %v", err)
	}
}

// TestRunMultiErrorPaths pins the validation the multi-service entry
// points and the Driver perform before any simulation time is spent:
// each bad input is rejected with a named error, and the machine is
// left untouched so the caller can correct and retry.
func TestRunMultiErrorPaths(t *testing.T) {
	m := testMachine(t)
	sched := &staticScheduler{alloc: sim.Uniform(16, true, 16, config.Widest, config.OneWay)}
	loads := []LoadPattern{ConstantLoad(0.5)}

	if _, err := RunMulti(m, Single(sched), 2, loads, nil); err == nil || !strings.Contains(err.Error(), "nil budget pattern") {
		t.Fatalf("nil budget pattern not rejected: %v", err)
	}
	if _, err := RunMulti(m, Single(sched), 2, []LoadPattern{nil}, ConstantBudget(0.8)); err == nil || !strings.Contains(err.Error(), "load pattern 0 is nil") {
		t.Fatalf("nil load pattern not rejected: %v", err)
	}
	if _, err := RunMulti(nil, Single(sched), 2, loads, ConstantBudget(0.8)); err == nil || !strings.Contains(err.Error(), "nil machine") {
		t.Fatalf("nil machine not rejected: %v", err)
	}
	if _, err := RunMulti(m, nil, 2, loads, ConstantBudget(0.8)); err == nil || !strings.Contains(err.Error(), "nil scheduler") {
		t.Fatalf("nil scheduler not rejected: %v", err)
	}

	// Driver.StepSlice rejects a qps slice shorter than the machine's
	// service count without advancing the clock.
	d, err := NewDriver(m, Single(sched), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Detach()
	if d.NumServices() != 1 {
		t.Fatalf("NumServices = %d, want 1", d.NumServices())
	}
	if _, err := d.StepSlice(nil, 0.5, 100); err == nil || !strings.Contains(err.Error(), "0 offered loads for 1 services") {
		t.Fatalf("short qps slice not rejected: %v", err)
	}
	if m.Now() != 0 {
		t.Fatalf("failed step advanced the clock to %v", m.Now())
	}

	// A well-formed step on the same driver still works.
	rec, err := d.StepSlice([]float64{0.5 * m.LC().MaxQPS}, 0.5, 0.8*m.MaxPowerW())
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalInstrB <= 0 || rec.QPS <= 0 {
		t.Fatalf("step after rejected input lost accounting: %+v", rec)
	}
}

// TestModulated covers the factor-table modulation the scenario
// engine compiles stochastic arrivals onto: an empty table must
// return the base pattern itself (so deterministic clients stay
// bitwise identical to their envelopes), indices round rather than
// floor (robust to a clock accumulated by repeated quantum adds), and
// out-of-range times clamp to the table edges.
func TestModulated(t *testing.T) {
	base := ConstantLoad(0.5)
	nilMod := Modulated(base, nil, SliceDur)
	for _, ts := range []float64{0, 0.05, 1, 100} {
		if nilMod(ts) != base(ts) {
			t.Errorf("empty factor table changed the pattern at t=%v", ts)
		}
	}
	factors := []float64{1, 2, 4}
	mod := Modulated(base, factors, SliceDur)
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 0.5},                 // quantum 0
		{0.04, 0.5},              // rounds down to quantum 0
		{0.06, 1.0},              // rounds up to quantum 1
		{0.1 + 0.1 - 1e-13, 2.0}, // accumulated clock error still hits quantum 2
		{-1, 0.5},                // clamps low
		{5, 2.0},                 // clamps past the table end
	}
	for _, tc := range cases {
		if got := mod(tc.t); got != tc.want {
			t.Errorf("Modulated(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}
