// Package ctrlplane is the fleet's production control plane: the
// reconcile loop that sits above internal/fleet and keeps a cluster
// serving through machine failures, operator churn and load swings.
// Each decision quantum it
//
//  1. reconciles health — every machine's last-slice telemetry (QoS
//     violations, divergence-detector degradation, fail-stopped cores:
//     the same signals the obs subsystem traces) feeds a debounced
//     state machine healthy → suspect → quarantined → draining →
//     evicted, with a probation lane for re-admission;
//  2. autoscales — offered load against serving capacity, debounced
//     with hysteresis and a cooldown, adds machines through a
//     Provision factory (power headroom permitting) and drains
//     machines the fleet no longer needs;
//  3. steps the fleet — quarantined and draining machines are masked
//     to zero routing weight (they keep their power share until they
//     leave, so in-flight work can finish), probation machines serve a
//     reduced share, and the wrapped router splits traffic across the
//     rest.
//
// Every control decision is made serially between slices from
// last-slice telemetry, so a managed run is as byte-deterministic as
// the fleet underneath it: same seed, same drills, same report at any
// GOMAXPROCS. The membership log and transition log are part of the
// deterministic output — they are the flight recorder an operator
// replays after an incident.
package ctrlplane

import (
	"fmt"
	"math"

	"cuttlesys/internal/fleet"
	"cuttlesys/internal/harness"
	"cuttlesys/internal/obs"
	"cuttlesys/internal/rng"
)

// State is a machine's position in the control plane's health state
// machine.
type State uint8

const (
	// Healthy machines take full routing weight.
	Healthy State = iota
	// Suspect machines have shown consecutive bad slices but still
	// serve; the debounce keeps a single bad slice from draining a
	// machine.
	Suspect
	// Quarantined machines get zero routing weight but keep their
	// power share and keep stepping, so recovery is observable.
	Quarantined
	// Draining machines are on their way out: zero weight, a bounded
	// number of slices to finish in-flight work, then forced eviction.
	Draining
	// Probation machines are newly admitted or re-admitted: they serve
	// a reduced share until they prove themselves.
	Probation
	// Evicted machines have left the fleet for good.
	Evicted
)

var stateNames = [...]string{"healthy", "suspect", "quarantined", "draining", "probation", "evicted"}

// String implements fmt.Stringer.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// serving reports whether the state receives routed traffic.
func (s State) serving() bool { return s == Healthy || s == Suspect || s == Probation }

// HealthConfig tunes the health state machine's debounce. All counts
// are consecutive slices; zero selects the documented default.
type HealthConfig struct {
	// SuspectAfter bad slices move healthy → suspect (default 2).
	SuspectAfter int
	// QuarantineAfter further bad slices move suspect → quarantined
	// (default 2).
	QuarantineAfter int
	// RecoverAfter good slices move suspect → healthy (default 2).
	RecoverAfter int
	// ReleaseAfter good slices move quarantined → probation
	// (default 3).
	ReleaseAfter int
	// ProbationAfter good slices move probation → healthy (default 4).
	// A bad slice during probation returns the machine to quarantine.
	ProbationAfter int
	// ProbationWeight scales a probation machine's routing share
	// (default 0.25).
	ProbationWeight float64
	// DrainAfter bad slices inside quarantine give up on recovery and
	// start the drain (default 6).
	DrainAfter int
	// DrainSlices bounds the drain: after this many slices the machine
	// is evicted regardless (default 3).
	DrainSlices int
}

func (c HealthConfig) withDefaults() HealthConfig {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.SuspectAfter, 2)
	def(&c.QuarantineAfter, 2)
	def(&c.RecoverAfter, 2)
	def(&c.ReleaseAfter, 3)
	def(&c.ProbationAfter, 4)
	def(&c.DrainAfter, 6)
	def(&c.DrainSlices, 3)
	if c.ProbationWeight <= 0 || c.ProbationWeight > 1 {
		c.ProbationWeight = 0.25
	}
	return c
}

// ScaleConfig tunes the closed-loop autoscaler. The zero value
// disables scaling (no Provision factory, no scale-down).
type ScaleConfig struct {
	// UpUtil and DownUtil are the hysteresis band on utilization
	// (offered QPS / serving capacity): above UpUtil counts toward a
	// scale-up, below DownUtil toward a scale-down, between them both
	// streaks reset. Defaults 0.8 and 0.3.
	UpUtil   float64
	DownUtil float64
	// UpAfter / DownAfter debounce: consecutive out-of-band slices
	// before acting. Defaults 3 and 6.
	UpAfter   int
	DownAfter int
	// Cooldown is the slices to wait after any scaling action before
	// the next (default 10). Health-driven replacement bypasses it.
	Cooldown int
	// MinMachines floors scale-down (default 1). MaxMachines caps
	// scale-up; 0 means unbounded.
	MinMachines int
	MaxMachines int
	// MinBudgetFrac is the power-headroom gate: a scale-up only
	// proceeds if the cluster budget would still cover at least this
	// fraction of the grown fleet's reference power (default 0.5).
	MinBudgetFrac float64
	// Provision builds the machine for a scale-up or replacement; id
	// is the stable id the fleet will assign and seed is drawn from the
	// manager's deterministic seed stream. Nil disables scale-up and
	// replacement.
	Provision func(id int, seed uint64) (fleet.NodeSpec, error)
	// ReplaceEvicted provisions a successor whenever a machine is
	// evicted for health reasons (not for scale-down), bypassing the
	// cooldown — failover capacity beats hysteresis.
	ReplaceEvicted bool
	// Seed seeds the provisioning seed stream.
	Seed uint64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.UpUtil <= 0 {
		c.UpUtil = 0.8
	}
	if c.DownUtil <= 0 {
		c.DownUtil = 0.3
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 3
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 6
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10
	}
	if c.MinMachines <= 0 {
		c.MinMachines = 1
	}
	if c.MinBudgetFrac <= 0 {
		c.MinBudgetFrac = 0.5
	}
	return c
}

// WarmStarter is the control plane's hook into the fleet model-sharing
// plane (internal/modelplane.Plane implements it): every machine the
// manager provisions — autoscale-up and ReplaceEvicted successors alike
// — is offered fleet-aggregated factors before its first slice, so a
// replacement does not pay the full characterization cost its
// predecessor already paid. The hook runs on the serial provisioning
// path, between slices.
type WarmStarter interface {
	// WarmStartMachine hands machine id's scheduler the fleet aggregate
	// for its service mix; reports whether a warm start happened.
	WarmStartMachine(id int, sched harness.MultiScheduler) bool
}

// Config assembles a Manager: the fleet it runs (whose Router is
// wrapped with the control plane's health mask) plus the health and
// scaling policies.
type Config struct {
	Fleet  fleet.Config
	Health HealthConfig
	Scale  ScaleConfig
	// WarmStart, when non-nil, warm-starts every provisioned machine
	// from the model-sharing plane. Nil (the default) leaves successors
	// cold-started.
	WarmStart WarmStarter
}

// MembershipEvent is one entry of the membership log: a machine
// joining or leaving the fleet, with the slice and simulated time it
// happened and why.
type MembershipEvent struct {
	Slice   int
	T       float64
	Machine int
	// Event is "join" or "evict".
	Event  string
	Reason string
}

// Transition is one entry of the health transition log.
type Transition struct {
	Slice   int
	T       float64
	Machine int
	From    string
	To      string
	Reason  string
}

// tracker is one machine's control-plane state.
type tracker struct {
	state State
	// bad / good are the consecutive-slice debounce counters; entering
	// a new state resets both.
	bad, good int
	// drainLeft counts down the bounded drain.
	drainLeft int
	// drainReason is carried from the transition into Draining to the
	// final eviction ("drain-timeout" keeps no context of its own).
	drainReason string
}

// Manager is the control plane over one fleet. All methods must be
// called from a single goroutine; every decision runs serially between
// fleet slices, preserving the fleet's determinism contract.
type Manager struct {
	f      *fleet.Fleet
	health HealthConfig
	scale  ScaleConfig
	warm   WarmStarter
	mask   *maskRouter
	obs    obs.Collector

	// trk is indexed by stable machine id, growing with the fleet's
	// slots — never keyed by a map, so every scan is in id order.
	trk []*tracker

	log   []MembershipEvent
	trans []Transition
	recs  []SliceRecord

	slice      int
	cooldown   int
	upStreak   int
	downStreak int
	seeds      *rng.RNG
	unrouted   float64
}

// validate rejects threshold values the control loop's comparisons
// would silently never trip on. withDefaults only replaces zero, so a
// NaN that leaks in from an upstream config (every comparison against
// NaN is false) would disable the autoscaler or the probation weight
// without a trace — fail loudly at construction instead.
func (cfg Config) validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"Health.ProbationWeight", cfg.Health.ProbationWeight},
		{"Scale.UpUtil", cfg.Scale.UpUtil},
		{"Scale.DownUtil", cfg.Scale.DownUtil},
		{"Scale.MinBudgetFrac", cfg.Scale.MinBudgetFrac},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("ctrlplane: %s is %v; thresholds must be finite", c.name, c.v)
		}
	}
	return nil
}

// New builds a manager over a fresh fleet assembled from specs. The
// initial machines start healthy; everything the autoscaler or
// replacement path admits later starts on probation.
func New(cfg Config, specs ...fleet.NodeSpec) (*Manager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		health: cfg.Health.withDefaults(),
		scale:  cfg.Scale.withDefaults(),
		warm:   cfg.WarmStart,
		obs:    obs.OrNop(cfg.Fleet.Collector),
		seeds:  rng.New(cfg.Scale.Seed),
	}
	inner := cfg.Fleet.Router
	if inner == nil {
		inner = fleet.Uniform{}
	}
	m.mask = &maskRouter{m: m, inner: inner}
	fcfg := cfg.Fleet
	fcfg.Router = m.mask
	f, err := fleet.New(fcfg, specs...)
	if err != nil {
		return nil, err
	}
	m.f = f
	for id := 0; id < f.Slots(); id++ {
		m.trk = append(m.trk, &tracker{state: Healthy})
		m.logEvent(id, "join", "bootstrap")
	}
	return m, nil
}

// Fleet exposes the managed fleet (read-mostly: step it only through
// the manager).
func (m *Manager) Fleet() *fleet.Fleet { return m.f }

// Close releases the managed fleet's worker pool.
func (m *Manager) Close() { m.f.Close() }

// StateOf reports machine id's control-plane state.
func (m *Manager) StateOf(id int) State {
	if id < 0 || id >= len(m.trk) {
		return Evicted
	}
	return m.trk[id].state
}

// Membership returns the membership log so far.
func (m *Manager) Membership() []MembershipEvent { return m.log }

// Transitions returns the health transition log so far.
func (m *Manager) Transitions() []Transition { return m.trans }

// SliceRecord is the fleet's slice record annotated with the control
// plane's view of it.
type SliceRecord struct {
	fleet.SliceRecord
	// States is the control-plane state of each Members entry at the
	// instant the slice was routed, index-aligned with Members.
	States []string
	// Serving counts the machines with routing weight this slice.
	Serving int
	// UnroutedQPS is offered load the mask could not place because no
	// machine was serving.
	UnroutedQPS float64
}

// Step runs one managed decision quantum: reconcile health, autoscale,
// then step the fleet.
func (m *Manager) Step(offered, budgetW float64) (SliceRecord, error) {
	if err := m.reconcile(); err != nil {
		return SliceRecord{}, err
	}
	if err := m.autoscale(offered, budgetW); err != nil {
		return SliceRecord{}, err
	}
	m.unrouted = 0
	frec, err := m.f.Step(offered, budgetW)
	if err != nil {
		return SliceRecord{}, err
	}
	rec := SliceRecord{SliceRecord: frec, UnroutedQPS: m.unrouted}
	for _, id := range frec.Members {
		st := m.trk[id].state
		rec.States = append(rec.States, st.String())
		if st.serving() {
			rec.Serving++
		}
	}
	if m.obs.Enabled() {
		m.obs.Set(obs.MetricCtrlServing, obs.NoLabels, float64(rec.Serving))
		if rec.UnroutedQPS > 0 {
			m.obs.Add(obs.MetricCtrlUnroutedQPS, obs.NoLabels, rec.UnroutedQPS)
		}
	}
	m.recs = append(m.recs, rec)
	m.slice++
	return rec, nil
}

// Run executes slices managed quanta under cluster-level load and
// budget patterns, like fleet.Run but through the control plane.
// Offered load tracks the full fleet capacity (active machines), so a
// quarantine shows up as pressure on the survivors — exactly the
// brownout a real cluster sees.
func (m *Manager) Run(slices int, load harness.LoadPattern, budget harness.BudgetPattern) (*Result, error) {
	if slices <= 0 {
		return nil, fmt.Errorf("ctrlplane: non-positive slice count %d", slices)
	}
	if load == nil || budget == nil {
		return nil, fmt.Errorf("ctrlplane: nil load or budget pattern")
	}
	for sl := 0; sl < slices; sl++ {
		t := m.f.Now()
		if _, err := m.Step(load(t)*m.f.CapacityQPS(), budget(t)*m.f.RefPowerW()); err != nil {
			return nil, err
		}
	}
	return m.Result(), nil
}

// reconcile advances every active machine's health state from its
// last-slice telemetry, in id order.
func (m *Manager) reconcile() error {
	tele := m.f.Telemetry()
	for _, id := range m.f.Active() {
		tr := m.trk[id]
		if tr.state == Draining {
			tr.drainLeft--
			if tr.drainLeft <= 0 {
				if err := m.evict(id, tr.drainReason); err != nil {
					return err
				}
			}
			continue
		}
		tl := tele[id]
		if !tl.Valid {
			continue
		}
		// The health signal: the same slice outcomes the obs subsystem
		// traces as qos.violation, core.degraded and fault telemetry.
		bad := tl.Violated || tl.Degraded || tl.FailedCores > 0
		if bad {
			tr.bad++
			tr.good = 0
		} else {
			tr.good++
			tr.bad = 0
		}
		switch tr.state {
		case Healthy:
			if tr.bad >= m.health.SuspectAfter {
				m.transition(id, Suspect, "bad-slices")
			}
		case Suspect:
			if tr.bad >= m.health.QuarantineAfter {
				m.transition(id, Quarantined, "bad-slices")
			} else if tr.good >= m.health.RecoverAfter {
				m.transition(id, Healthy, "recovered")
			}
		case Quarantined:
			if tr.bad >= m.health.DrainAfter {
				m.startDrain(id, "unrecovered")
			} else if tr.good >= m.health.ReleaseAfter {
				m.transition(id, Probation, "released")
			}
		case Probation:
			if tr.bad >= 1 {
				m.transition(id, Quarantined, "probation-failed")
			} else if tr.good >= m.health.ProbationAfter {
				m.transition(id, Healthy, "probation-passed")
			}
		}
	}
	return nil
}

// autoscale closes the loop on utilization: offered load against the
// serving machines' capacity, debounced, with a power-headroom gate on
// growth.
func (m *Manager) autoscale(offered, budgetW float64) error {
	if m.cooldown > 0 {
		m.cooldown--
	}
	capQPS, serving := 0.0, 0
	refW := 0.0
	tele := m.f.Telemetry()
	for _, id := range m.f.Active() {
		if m.trk[id].state.serving() {
			capQPS += tele[id].MaxQPS
			serving++
		}
		refW += tele[id].RefMaxPowerW
	}
	over := capQPS <= 0 && offered > 0 // nothing serving: always pressure
	under := false
	if capQPS > 0 {
		util := offered / capQPS
		over = util > m.scale.UpUtil
		under = util < m.scale.DownUtil
	}
	switch {
	case over:
		m.upStreak++
		m.downStreak = 0
	case under:
		m.downStreak++
		m.upStreak = 0
	default:
		m.upStreak, m.downStreak = 0, 0
	}

	if m.upStreak >= m.scale.UpAfter && m.cooldown == 0 && m.scale.Provision != nil &&
		(m.scale.MaxMachines == 0 || serving < m.scale.MaxMachines) {
		// Power headroom: admitting another machine of roughly average
		// reference power must leave the budget covering MinBudgetFrac
		// of the grown fleet.
		est := refW
		if n := m.f.Size(); n > 0 {
			est = refW / float64(n)
		}
		if budgetW >= m.scale.MinBudgetFrac*(refW+est) {
			id, err := m.provision("scale-up")
			if err != nil {
				return err
			}
			m.emitScale("up", id, offered, capQPS)
			m.cooldown = m.scale.Cooldown
			m.upStreak = 0
		}
	}
	if m.downStreak >= m.scale.DownAfter && m.cooldown == 0 && serving > m.scale.MinMachines {
		// Drain the highest-id healthy machine — the autoscaler's most
		// recent addition first, and never a machine mid-recovery.
		victim := -1
		for _, id := range m.f.Active() {
			if m.trk[id].state == Healthy {
				victim = id
			}
		}
		if victim >= 0 {
			m.startDrain(victim, "scale-down")
			m.emitScale("down", victim, offered, capQPS)
			m.cooldown = m.scale.Cooldown
			m.downStreak = 0
		}
	}
	return nil
}

// provision admits a new machine through the factory; it starts on
// probation.
func (m *Manager) provision(reason string) (int, error) {
	id := m.f.Slots()
	spec, err := m.scale.Provision(id, m.seeds.Uint64())
	if err != nil {
		return 0, fmt.Errorf("ctrlplane: provision machine %d: %w", id, err)
	}
	got, err := m.f.Attach(spec)
	if err != nil {
		return 0, fmt.Errorf("ctrlplane: attach machine %d: %w", id, err)
	}
	if m.warm != nil {
		// Warm-start the successor before its first slice: scale-ups and
		// health replacements inherit the fleet's learned model instead
		// of re-paying the sampling phase.
		m.warm.WarmStartMachine(got, spec.Scheduler)
	}
	m.trk = append(m.trk, &tracker{state: Probation})
	m.logEvent(got, "join", reason)
	if m.obs.Enabled() {
		m.obs.Add(obs.MetricCtrlJoins, obs.NoLabels, 1)
		m.obs.Emit(obs.Instant(obs.EventJoin, m.f.Now()).WithMachine(obs.ClusterMachine).
			WithSlice(m.slice).With("machine", obs.Itoa(got)).With("reason", reason))
	}
	return got, nil
}

// startDrain moves a machine into the bounded drain: zero routing
// weight, DrainSlices quanta to finish in-flight work, then eviction.
func (m *Manager) startDrain(id int, reason string) {
	m.transition(id, Draining, reason)
	tr := m.trk[id]
	tr.drainLeft = m.health.DrainSlices
	tr.drainReason = reason
}

// evict removes a machine from the fleet and, for health-driven
// evictions, provisions its replacement.
func (m *Manager) evict(id int, reason string) error {
	m.transition(id, Evicted, reason)
	if err := m.f.Evict(id); err != nil {
		// Unreachable by construction (the tracker only drains active
		// machines); keep the log honest if it ever happens.
		reason = reason + ": " + err.Error()
	}
	m.logEvent(id, "evict", reason)
	if m.obs.Enabled() {
		m.obs.Add(obs.MetricCtrlEvictions, obs.NoLabels, 1)
		m.obs.Emit(obs.Instant(obs.EventEvict, m.f.Now()).WithMachine(obs.ClusterMachine).
			WithSlice(m.slice).With("machine", obs.Itoa(id)).With("reason", reason))
	}
	if reason != "scale-down" && m.scale.ReplaceEvicted && m.scale.Provision != nil {
		if _, err := m.provision("replace:" + obs.Itoa(id)); err != nil {
			return err
		}
	}
	return nil
}

// transition records a state change and emits its instant.
func (m *Manager) transition(id int, to State, reason string) {
	tr := m.trk[id]
	from := tr.state
	tr.state = to
	tr.bad, tr.good = 0, 0
	m.trans = append(m.trans, Transition{
		Slice: m.slice, T: m.f.Now(), Machine: id,
		From: from.String(), To: to.String(), Reason: reason,
	})
	if m.obs.Enabled() {
		m.obs.Add(obs.MetricCtrlTransitions, obs.Label("to", to.String()), 1)
		m.obs.Emit(obs.Instant(obs.EventHealth, m.f.Now()).WithMachine(obs.ClusterMachine).
			WithSlice(m.slice).With("machine", obs.Itoa(id)).
			With("from", from.String()).With("to", to.String()).With("reason", reason))
	}
}

func (m *Manager) logEvent(id int, event, reason string) {
	m.log = append(m.log, MembershipEvent{
		Slice: m.slice, T: m.f.Now(), Machine: id, Event: event, Reason: reason,
	})
}

func (m *Manager) emitScale(dir string, id int, offered, capQPS float64) {
	if !m.obs.Enabled() {
		return
	}
	util := 0.0
	if capQPS > 0 {
		util = offered / capQPS
	}
	m.obs.Add(obs.MetricCtrlScaleOps, obs.Label("dir", dir), 1)
	m.obs.Emit(obs.Instant(obs.EventScale, m.f.Now()).WithMachine(obs.ClusterMachine).
		WithSlice(m.slice).With("dir", dir).With("machine", obs.Itoa(id)).
		With("util", obs.Float(util)))
}

// Result snapshots the managed run: the fleet result, the annotated
// slice records, both logs, and each slot's final state.
type Result struct {
	Fleet       *fleet.Result
	Slices      []SliceRecord
	Membership  []MembershipEvent
	Transitions []Transition
	// Final is each machine slot's state when the run ended, by id.
	Final []string
}

// Result builds the current snapshot.
func (m *Manager) Result() *Result {
	res := &Result{
		Fleet:       m.f.Result(),
		Slices:      append([]SliceRecord(nil), m.recs...),
		Membership:  append([]MembershipEvent(nil), m.log...),
		Transitions: append([]Transition(nil), m.trans...),
	}
	for _, tr := range m.trk {
		res.Final = append(res.Final, tr.state.String())
	}
	return res
}
