package ctrlplane

import "cuttlesys/internal/fleet"

// maskRouter wraps the fleet's configured router with the control
// plane's health mask: quarantined and draining machines get exactly
// zero routing weight (the arbiter is untouched, so they keep their
// power share until they leave), probation machines serve a reduced
// share, and the inner router only ever sees the serving subset — a
// stateful policy like QoSAware keeps working across quarantines
// because Telemetry.Machine carries the stable id.
type maskRouter struct {
	m     *Manager
	inner fleet.Router
}

// Name implements fleet.Router.
func (r *maskRouter) Name() string { return "ctrl(" + r.inner.Name() + ")" }

// Route implements fleet.Router. All arithmetic runs in telemetry
// (id) order, so the mask preserves the fleet's determinism contract.
func (r *maskRouter) Route(offered float64, tele []fleet.Telemetry) []float64 {
	out := make([]float64, len(tele))
	serving := make([]int, 0, len(tele))
	for i, t := range tele {
		if r.m.StateOf(t.Machine).serving() {
			serving = append(serving, i)
		}
	}
	if len(serving) == 0 {
		// Nobody to serve: shed the whole offered load rather than
		// route to a quarantined machine. The manager records the shed
		// as UnroutedQPS.
		r.m.unrouted += offered
		return out
	}
	sub := make([]fleet.Telemetry, len(serving))
	for k, i := range serving {
		sub[k] = tele[i]
	}
	shares := r.inner.Route(offered, sub)
	// Probation machines carry a reduced weight; renormalising keeps
	// the offered load conserved across the serving set.
	total := 0.0
	for k, i := range serving {
		if k >= len(shares) {
			break
		}
		w := shares[k]
		if w < 0 {
			w = 0
		}
		if r.m.StateOf(tele[i].Machine) == Probation {
			w *= r.m.health.ProbationWeight
		}
		out[i] = w
		total += w
	}
	if total <= 0 {
		r.m.unrouted += offered
		for i := range out {
			out[i] = 0
		}
		return out
	}
	scale := offered / total
	for _, i := range serving {
		out[i] *= scale
	}
	return out
}
