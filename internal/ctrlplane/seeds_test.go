package ctrlplane

import (
	"testing"

	"cuttlesys/internal/config"
	"cuttlesys/internal/fleet"
	"cuttlesys/internal/harness"
	"cuttlesys/internal/rng"
	"cuttlesys/internal/sim"
	"cuttlesys/internal/workload"
)

// fixedScheduler is the cheapest possible MultiScheduler for
// membership-churn tests that never step a slice.
type fixedScheduler struct{ alloc sim.Allocation }

func (s *fixedScheduler) Name() string                               { return "fixed" }
func (s *fixedScheduler) ProfilePhases(_, _ float64) []harness.Phase { return nil }
func (s *fixedScheduler) Decide(_ []sim.PhaseResult, _, _ float64) (sim.Allocation, float64) {
	return s.alloc, 0
}
func (s *fixedScheduler) EndSlice(sim.PhaseResult, float64) {}

func churnSpec(t *testing.T, seed uint64) fleet.NodeSpec {
	t.Helper()
	lc, err := workload.ByName("silo")
	if err != nil {
		t.Fatal(err)
	}
	_, pool := workload.SplitTrainTest(1, 16)
	m := sim.New(sim.Spec{
		Seed: seed, LC: lc,
		Batch:          workload.Mix(seed, pool, 2),
		Reconfigurable: true,
	})
	s := &fixedScheduler{alloc: sim.Uniform(2, true, 16, config.Widest, config.OneWay)}
	return fleet.NodeSpec{Machine: m, Scheduler: harness.Single(s)}
}

// TestReplaceEvictedSeedStreamsDisjoint is the regression net under
// the warm-start wiring: across 100 evict/replace cycles every
// successor's RNG stream must stay disjoint from every machine that
// ever lived — the bootstrap fleet's and every earlier successor's.
// Warm-starting shares *model state* between machines; it must never
// share randomness, or sibling machines would correlate their noise
// and the determinism discipline of DESIGN.md §2 would break.
func TestReplaceEvictedSeedStreamsDisjoint(t *testing.T) {
	const initial = 3
	const cycles = 100
	const probe = 4 // stream values drawn per machine

	seen := make(map[uint64][]int)
	record := func(id int, seed uint64) {
		r := rng.New(seed)
		for k := 0; k < probe; k++ {
			v := r.Uint64()
			seen[v] = append(seen[v], id)
		}
	}

	initSeeds := fleet.Seeds(42, initial)
	specs := make([]fleet.NodeSpec, initial)
	for i, s := range initSeeds {
		record(i, s)
		specs[i] = churnSpec(t, s)
	}

	var provSeeds []uint64
	m, err := New(Config{
		Fleet: fleet.Config{Router: fleet.Uniform{}},
		Scale: ScaleConfig{
			Provision: func(id int, seed uint64) (fleet.NodeSpec, error) {
				record(id, seed)
				provSeeds = append(provSeeds, seed)
				return churnSpec(t, seed), nil
			},
			ReplaceEvicted: true,
			Seed:           42 ^ 0x0b5e55ed,
		},
	}, specs...)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for cycle := 0; cycle < cycles; cycle++ {
		victim := m.f.Slots() - 1 // always the newest live machine
		if err := m.evict(victim, "unhealthy"); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if len(provSeeds) != cycles {
		t.Fatalf("provisioned %d successors, want %d", len(provSeeds), cycles)
	}
	for v, ids := range seen {
		if len(ids) > 1 {
			t.Fatalf("stream value %x shared by machines %v: successor seed streams must be disjoint", v, ids)
		}
	}
}

// warmRecorder records which machines the manager offered a warm
// start.
type warmRecorder struct{ ids []int }

func (w *warmRecorder) WarmStartMachine(id int, sched harness.MultiScheduler) bool {
	w.ids = append(w.ids, id)
	return true
}

// TestProvisionInvokesWarmStarter checks the hook fires for every
// provisioned successor (and never for bootstrap machines).
func TestProvisionInvokesWarmStarter(t *testing.T) {
	w := &warmRecorder{}
	specs := make([]fleet.NodeSpec, 2)
	for i, s := range fleet.Seeds(7, 2) {
		specs[i] = churnSpec(t, s)
	}
	m, err := New(Config{
		Fleet: fleet.Config{Router: fleet.Uniform{}},
		Scale: ScaleConfig{
			Provision: func(id int, seed uint64) (fleet.NodeSpec, error) {
				return churnSpec(t, seed), nil
			},
			ReplaceEvicted: true,
			Seed:           11,
		},
		WarmStart: w,
	}, specs...)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(w.ids) != 0 {
		t.Fatalf("bootstrap machines must not be warm-started, got %v", w.ids)
	}
	if err := m.evict(1, "unhealthy"); err != nil {
		t.Fatal(err)
	}
	if err := m.evict(2, "unhealthy"); err != nil {
		t.Fatal(err)
	}
	if len(w.ids) != 2 || w.ids[0] != 2 || w.ids[1] != 3 {
		t.Fatalf("warm starter saw %v, want successors [2 3]", w.ids)
	}
}
