package ctrlplane_test

import (
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"testing"

	"cuttlesys/internal/config"
	"cuttlesys/internal/ctrlplane"
	"cuttlesys/internal/fault"
	"cuttlesys/internal/fleet"
	"cuttlesys/internal/harness"
	"cuttlesys/internal/sim"
	"cuttlesys/internal/workload"
)

// staticScheduler applies one fixed allocation — cheap enough to step
// a managed fleet through long drills.
type staticScheduler struct {
	alloc    sim.Allocation
	overhead float64
}

func (s *staticScheduler) Name() string                               { return "static" }
func (s *staticScheduler) ProfilePhases(_, _ float64) []harness.Phase { return nil }
func (s *staticScheduler) Decide(_ []sim.PhaseResult, _, _ float64) (sim.Allocation, float64) {
	return s.alloc, s.overhead
}
func (s *staticScheduler) EndSlice(sim.PhaseResult, float64) {}

// buildSpec assembles one machine for the managed fleet.
func buildSpec(t *testing.T, seed uint64, inj harness.FaultInjector) fleet.NodeSpec {
	t.Helper()
	lc, err := workload.ByName("silo")
	if err != nil {
		t.Fatal(err)
	}
	_, pool := workload.SplitTrainTest(1, 16)
	m := sim.New(sim.Spec{
		Seed: seed, LC: lc,
		Batch:          workload.Mix(seed, pool, 8),
		Reconfigurable: true,
	})
	s := &staticScheduler{
		alloc:    sim.Uniform(8, true, 16, config.Widest, config.OneWay),
		overhead: 0.002,
	}
	return fleet.NodeSpec{Machine: m, Scheduler: harness.Single(s), Injector: inj}
}

// buildSpecs assembles n machines with seeds from one stream.
func buildSpecs(t *testing.T, n int, inj map[int]harness.FaultInjector) []fleet.NodeSpec {
	t.Helper()
	seeds := fleet.Seeds(42, n)
	specs := make([]fleet.NodeSpec, n)
	for i := range specs {
		specs[i] = buildSpec(t, seeds[i], inj[i])
	}
	return specs
}

// provisioner is the scale-up / replacement factory.
func provisioner(t *testing.T) func(id int, seed uint64) (fleet.NodeSpec, error) {
	return func(id int, seed uint64) (fleet.NodeSpec, error) {
		return buildSpec(t, seed, nil), nil
	}
}

// failoverManager assembles the canonical failover drill: four
// machines, machine 1 fail-stopped from t = 0.5 for the rest of the
// run, replacement enabled.
func failoverManager(t *testing.T, workers int) *ctrlplane.Manager {
	t.Helper()
	inj := map[int]harness.FaultInjector{
		1: fault.MustSchedule(7,
			fault.Event{Kind: fault.CoreFailStop, Start: 0.5, End: 1e9, Cores: 6}),
	}
	m, err := ctrlplane.New(ctrlplane.Config{
		Fleet: fleet.Config{Router: fleet.Uniform{}, Workers: workers},
		Scale: ctrlplane.ScaleConfig{
			Provision:      provisioner(t),
			ReplaceEvicted: true,
			Seed:           99,
		},
	}, buildSpecs(t, 4, inj)...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFailoverDrill is the acceptance scenario: a fail-stopped machine
// is quarantined within the debounce window, receives zero traffic
// from then on while keeping its power share, is force-evicted after
// the bounded drain, and its replacement joins, passes probation and
// ends the run healthy.
func TestFailoverDrill(t *testing.T) {
	m := failoverManager(t, 0)
	offered := 0.4 * m.Fleet().CapacityQPS()
	budget := 0.8 * m.Fleet().RefPowerW()
	var recs []ctrlplane.SliceRecord
	for i := 0; i < 30; i++ {
		rec, err := m.Step(offered, budget)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	res := m.Result()

	// Quarantined within the debounce window: the fault lands at slice
	// 5, telemetry lags one slice, and the two debounce stages add
	// SuspectAfter + QuarantineAfter bad slices.
	quarSlice := -1
	for _, tr := range res.Transitions {
		if tr.Machine == 1 && tr.To == "quarantined" {
			quarSlice = tr.Slice
			break
		}
	}
	if quarSlice < 0 || quarSlice > 5+1+2+2 {
		t.Fatalf("machine 1 quarantined at slice %d, want within debounce window (<= 10)", quarSlice)
	}

	// From quarantine on: zero routed traffic, full budget share kept.
	sawQuarBudget := false
	for i, rec := range recs {
		for k, id := range rec.Members {
			st := rec.States[k]
			if st == "quarantined" || st == "draining" {
				if rec.NodeQPS[k] != 0 {
					t.Fatalf("slice %d: %s machine %d routed %v qps", i, st, id, rec.NodeQPS[k])
				}
				if rec.NodeBudgetW[k] <= 0 {
					t.Fatalf("slice %d: %s machine %d lost its power share", i, st, id)
				}
				sawQuarBudget = true
			}
		}
	}
	if !sawQuarBudget {
		t.Fatal("drill never quarantined anything")
	}

	// Bounded drain then forced eviction, recorded in the membership
	// log; the replacement joins in the same reconcile.
	var evictSlice, joinSlice = -1, -1
	for _, ev := range res.Membership {
		if ev.Machine == 1 && ev.Event == "evict" {
			evictSlice = ev.Slice
		}
		if ev.Machine == 4 && ev.Event == "join" {
			joinSlice = ev.Slice
			if !strings.HasPrefix(ev.Reason, "replace:") {
				t.Fatalf("replacement join reason %q", ev.Reason)
			}
		}
	}
	if evictSlice < 0 {
		t.Fatal("fail-stopped machine never evicted")
	}
	if joinSlice != evictSlice {
		t.Fatalf("replacement joined at slice %d, eviction at %d", joinSlice, evictSlice)
	}

	// The replacement serves its very first slice (on probation, at a
	// reduced share), then passes probation within the window.
	first := -1
	for i, rec := range recs {
		for k, id := range rec.Members {
			if id != 4 {
				continue
			}
			if first < 0 {
				first = i
				if rec.States[k] != "probation" {
					t.Fatalf("replacement state %q on its first slice", rec.States[k])
				}
				if rec.NodeQPS[k] <= 0 {
					t.Fatal("replacement served no traffic on its first slice")
				}
				// Probation weight: a quarter of a healthy peer's share
				// under the uniform router (machine 0 is healthy).
				ratio := rec.NodeQPS[k] / rec.NodeQPS[0]
				if math.Abs(ratio-0.25) > 1e-9 {
					t.Fatalf("probation share ratio %v, want 0.25", ratio)
				}
			}
		}
	}
	if first < 0 {
		t.Fatal("replacement never stepped")
	}
	healthyAt := -1
	for _, tr := range res.Transitions {
		if tr.Machine == 4 && tr.To == "healthy" {
			healthyAt = tr.Slice
		}
	}
	// Valid telemetry appears one slice after the join; the probation
	// debounce adds ProbationAfter good slices.
	if healthyAt < 0 || healthyAt > joinSlice+2+4 {
		t.Fatalf("replacement healthy at slice %d (joined %d), want within probation window",
			healthyAt, joinSlice)
	}
	if got := res.Final[1]; got != "evicted" {
		t.Fatalf("machine 1 final state %q", got)
	}
	if got := res.Final[4]; got != "healthy" {
		t.Fatalf("replacement final state %q", got)
	}
	// Survivors were never disturbed.
	for _, id := range []int{0, 2, 3} {
		if got := res.Final[id]; got != "healthy" {
			t.Fatalf("survivor %d final state %q", id, got)
		}
	}
}

// drillJSON runs the failover drill and marshals its result.
func drillJSON(t *testing.T, workers int) []byte {
	t.Helper()
	m := failoverManager(t, workers)
	offered := 0.4 * m.Fleet().CapacityQPS()
	budget := 0.8 * m.Fleet().RefPowerW()
	for i := 0; i < 30; i++ {
		if _, err := m.Step(offered, budget); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := json.Marshal(m.Result())
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestManagedDeterminism extends the byte-determinism contract to the
// control plane: the full failover drill — quarantine, drain,
// eviction, replacement — produces identical results under serial and
// parallel stepping at any GOMAXPROCS.
func TestManagedDeterminism(t *testing.T) {
	serial := drillJSON(t, 1)
	parallel := drillJSON(t, 8)
	if string(serial) != string(parallel) {
		t.Fatal("managed drill depends on stepping parallelism")
	}
	prev := runtime.GOMAXPROCS(1)
	narrow := drillJSON(t, 8)
	runtime.GOMAXPROCS(prev)
	if string(serial) != string(narrow) {
		t.Fatal("managed drill depends on GOMAXPROCS")
	}
}

// TestQuarantineReleaseProbation covers the recovery lane: a transient
// fault quarantines a machine, recovery releases it to probation at a
// reduced share, and sustained good slices restore full health.
func TestQuarantineReleaseProbation(t *testing.T) {
	// The fault clears before quarantine accumulates DrainAfter bad
	// slices, so the machine recovers instead of draining.
	inj := map[int]harness.FaultInjector{
		1: fault.MustSchedule(7,
			fault.Event{Kind: fault.CoreFailStop, Start: 0.3, End: 1.0, Cores: 6}),
	}
	m, err := ctrlplane.New(ctrlplane.Config{
		Fleet: fleet.Config{Router: fleet.Uniform{}},
	}, buildSpecs(t, 3, inj)...)
	if err != nil {
		t.Fatal(err)
	}
	offered := 0.4 * m.Fleet().CapacityQPS()
	budget := 0.8 * m.Fleet().RefPowerW()
	for i := 0; i < 30; i++ {
		if _, err := m.Step(offered, budget); err != nil {
			t.Fatal(err)
		}
	}
	res := m.Result()
	var path []string
	for _, tr := range res.Transitions {
		if tr.Machine == 1 {
			path = append(path, tr.To)
		}
	}
	want := []string{"suspect", "quarantined", "probation", "healthy"}
	if len(path) != len(want) {
		t.Fatalf("machine 1 transition path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("machine 1 transition path %v, want %v", path, want)
		}
	}
	if got := res.Final[1]; got != "healthy" {
		t.Fatalf("machine 1 final state %q", got)
	}
	if got := m.Fleet().Size(); got != 3 {
		t.Fatalf("fleet size %d after recovery, want 3 (nothing evicted)", got)
	}
}

// TestAutoscaler drives the closed loop through both directions:
// sustained pressure adds a machine (once — the cooldown and the
// MaxMachines cap hold further growth), sustained idleness drains the
// newest machine without provisioning a replacement.
func TestAutoscaler(t *testing.T) {
	m, err := ctrlplane.New(ctrlplane.Config{
		Fleet: fleet.Config{Router: fleet.Uniform{}},
		Scale: ctrlplane.ScaleConfig{
			Provision:      provisioner(t),
			ReplaceEvicted: true, // must NOT fire for scale-down evictions
			MinMachines:    2,
			MaxMachines:    3,
			Cooldown:       5,
			Seed:           17,
		},
	}, buildSpecs(t, 2, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	cap0 := m.Fleet().CapacityQPS()
	budget := 1.2 * m.Fleet().RefPowerW() // generous headroom

	// Pressure: util 0.9 against the original pair.
	for i := 0; i < 12; i++ {
		if _, err := m.Step(0.9*cap0, budget); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Fleet().Slots(); got != 3 {
		t.Fatalf("%d slots after sustained pressure, want 3 (one scale-up)", got)
	}
	joins := 0
	for _, ev := range m.Membership() {
		if ev.Event == "join" && ev.Reason == "scale-up" {
			joins++
		}
	}
	if joins != 1 {
		t.Fatalf("%d scale-up joins, want exactly 1", joins)
	}

	// Idle: util far below the band drains the newest healthy machine.
	for i := 0; i < 25; i++ {
		if _, err := m.Step(0.1*cap0, budget); err != nil {
			t.Fatal(err)
		}
	}
	res := m.Result()
	if got := res.Final[2]; got != "evicted" {
		t.Fatalf("scaled-up machine final state %q, want evicted", got)
	}
	for _, ev := range res.Membership {
		if ev.Machine == 2 && ev.Event == "evict" && ev.Reason != "scale-down" {
			t.Fatalf("scale-down eviction reason %q", ev.Reason)
		}
		if ev.Event == "join" && strings.HasPrefix(ev.Reason, "replace:") {
			t.Fatal("scale-down eviction provisioned a replacement")
		}
	}
	if got := m.Fleet().Size(); got != 2 {
		t.Fatalf("fleet size %d after scale-down, want 2", got)
	}
}

// TestScaleUpPowerHeadroomGate: without budget headroom the autoscaler
// must refuse to grow no matter how long the pressure lasts.
func TestScaleUpPowerHeadroomGate(t *testing.T) {
	m, err := ctrlplane.New(ctrlplane.Config{
		Fleet: fleet.Config{Router: fleet.Uniform{}},
		Scale: ctrlplane.ScaleConfig{Provision: provisioner(t), Seed: 17},
	}, buildSpecs(t, 2, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	cap0 := m.Fleet().CapacityQPS()
	// Budget covers the current pair but not MinBudgetFrac of a grown
	// fleet: 0.5 * (refW + refW/2) = 0.75 refW.
	budget := 0.7 * m.Fleet().RefPowerW()
	for i := 0; i < 15; i++ {
		if _, err := m.Step(0.9*cap0, budget); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Fleet().Slots(); got != 2 {
		t.Fatalf("%d slots, want 2: scale-up must be blocked by the power-headroom gate", got)
	}
}

// TestAllQuarantinedShedsLoad: with every machine quarantined the mask
// routes nothing anywhere — the offered load is shed and recorded, and
// the control loop keeps running rather than crashing into a dead
// machine.
func TestAllQuarantinedShedsLoad(t *testing.T) {
	sched := func(seed uint64) harness.FaultInjector {
		return fault.MustSchedule(seed,
			fault.Event{Kind: fault.CoreFailStop, Start: 0, End: 1e9, Cores: 6})
	}
	inj := map[int]harness.FaultInjector{0: sched(3), 1: sched(4)}
	m, err := ctrlplane.New(ctrlplane.Config{Fleet: fleet.Config{}},
		buildSpecs(t, 2, inj)...)
	if err != nil {
		t.Fatal(err)
	}
	offered := 0.4 * m.Fleet().CapacityQPS()
	budget := 0.8 * m.Fleet().RefPowerW()
	shed := false
	for i := 0; i < 8; i++ {
		rec, err := m.Step(offered, budget)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Serving == 0 {
			shed = true
			if rec.UnroutedQPS != offered {
				t.Fatalf("slice %d: unrouted %v, offered %v", i, rec.UnroutedQPS, offered)
			}
			for k, q := range rec.NodeQPS {
				if q != 0 {
					t.Fatalf("slice %d: quarantined machine %d routed %v qps",
						i, rec.Members[k], q)
				}
			}
		}
	}
	if !shed {
		t.Fatal("fleet never reached the all-quarantined state")
	}
}

// TestNewRejectsNonFiniteThresholds guards the config boundary:
// withDefaults only replaces zero, so a NaN threshold leaking in from
// an upstream config would make every debounce comparison false and
// silently disable the autoscaler (or pin the probation weight).
// Construction must refuse it, naming the field.
func TestNewRejectsNonFiniteThresholds(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		cfg  ctrlplane.Config
	}{
		{"Scale.UpUtil", ctrlplane.Config{Scale: ctrlplane.ScaleConfig{UpUtil: nan}}},
		{"Scale.DownUtil", ctrlplane.Config{Scale: ctrlplane.ScaleConfig{DownUtil: nan}}},
		{"Scale.MinBudgetFrac", ctrlplane.Config{Scale: ctrlplane.ScaleConfig{MinBudgetFrac: math.Inf(1)}}},
		{"Health.ProbationWeight", ctrlplane.Config{Health: ctrlplane.HealthConfig{ProbationWeight: nan}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ctrlplane.New(tc.cfg, buildSpecs(t, 2, nil)...)
			if err == nil {
				t.Fatal("non-finite threshold accepted")
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Errorf("error %q does not name %s", err, tc.name)
			}
		})
	}
}
