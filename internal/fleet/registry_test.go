package fleet

import (
	"strings"
	"testing"
)

// TestRouterByName pins the registry roster to the routers' own
// reported names, and requires stateful routers to come out fresh:
// two compiled scenarios resolving "qos-aware" must never share
// weight state.
func TestRouterByName(t *testing.T) {
	for _, name := range []string{"uniform", "least-loaded", "qos-aware"} {
		r, err := RouterByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := r.Name(); got != name {
			t.Errorf("RouterByName(%q).Name() = %q", name, got)
		}
	}
	a, err := RouterByName("qos-aware")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RouterByName("qos-aware")
	if err != nil {
		t.Fatal(err)
	}
	if a.(*QoSAware) == b.(*QoSAware) {
		t.Error("qos-aware resolved to a shared instance; weight state would leak across runs")
	}
	if _, err := RouterByName("round-robin"); err == nil || !strings.Contains(err.Error(), "round-robin") {
		t.Errorf("unknown router error %v does not name the input", err)
	}
}

// TestArbiterByName mirrors the router check for the budget arbiters.
func TestArbiterByName(t *testing.T) {
	for _, name := range []string{"equal", "proportional", "headroom"} {
		a, err := ArbiterByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := a.Name(); got != name {
			t.Errorf("ArbiterByName(%q).Name() = %q", name, got)
		}
	}
	if _, err := ArbiterByName("auction"); err == nil || !strings.Contains(err.Error(), "auction") {
		t.Errorf("unknown arbiter error %v does not name the input", err)
	}
}
