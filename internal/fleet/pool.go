package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cuttlesys/internal/harness"
)

// stepAll advances every machine one timeslice, fanning the work
// across at most f.workers goroutines. This is the repo's sanctioned
// merge pattern for parallel determinism (DESIGN.md §8): workers claim
// machine indices off an atomic counter and write results only into
// that machine's pre-sized cell, so no two goroutines touch the same
// element and the merged output is byte-identical for every
// interleaving. Each machine's step is self-contained — its inputs
// were computed serially from last slice's telemetry before the fan-
// out, and all cross-machine reductions happen after the join.
func (f *Fleet) stepAll(ids []int, qps, loadFrac, budgets []float64) ([]harness.SliceRecord, error) {
	n := len(ids)
	recs := make([]harness.SliceRecord, n)
	errs := make([]error, n)

	workers := f.workers
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 1 {
		for k, id := range ids {
			recs[k], errs[k] = f.nodes[id].d.StepSlice([]float64{qps[k]}, loadFrac[k], budgets[k])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= n {
						return
					}
					recs[k], errs[k] = f.nodes[ids[k]].d.StepSlice([]float64{qps[k]}, loadFrac[k], budgets[k])
				}
			}()
		}
		wg.Wait()
	}

	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: machine %d: %w", ids[k], err)
		}
	}
	return recs, nil
}
