package fleet

import (
	"cuttlesys/internal/harness"
	"cuttlesys/internal/obs"
)

// emitFleetTelemetry folds one fleet quantum into the trace and the
// cluster-scope metric series. Called only from Step's serial tail,
// so the ClusterMachine event stream and the unlabelled fleet series
// have exactly one writer — the determinism rule of DESIGN.md §10.
func (f *Fleet) emitFleetTelemetry(rec *SliceRecord, slice int) {
	c := f.obs
	c.Emit(obs.Span(obs.SpanFleetSlice, rec.T, harness.SliceDur).
		WithMachine(obs.ClusterMachine).WithSlice(slice).
		With("router", f.router.Name()).With("arbiter", f.arbiter.Name()))
	c.Add(obs.MetricFleetSlices, obs.NoLabels, 1)
	c.Set(obs.MetricFleetQPS, obs.NoLabels, rec.OfferedQPS)
	c.Set(obs.MetricFleetBudgetW, obs.NoLabels, rec.BudgetW)
	c.Set(obs.MetricFleetQoSMet, obs.NoLabels, rec.QoSMetFrac)
	c.Add(obs.MetricFleetInstrB, obs.NoLabels, rec.TotalInstrB)
	c.Add(obs.MetricFleetOverheadSerial, obs.NoLabels, rec.OverheadSerialSec)
	c.Add(obs.MetricFleetOverheadCrit, obs.NoLabels, rec.OverheadCritSec)
}
