package fleet

// An Arbiter partitions the cluster power budget across machines each
// slice, generalising the single-machine budget patterns of §VIII-D:
// instead of every machine receiving a fixed fraction of its own
// reference power, the cluster cap is one pool and machines compete
// for it based on reported headroom. Split must return one positive
// watt share per telemetry entry summing (up to float rounding) to
// budgetW; like routers, arbiters run serially in machine index order
// and must not mutate the telemetry slice.
type Arbiter interface {
	Name() string
	Split(budgetW float64, tele []Telemetry) []float64
}

// EqualShare gives every machine the same wattage regardless of size —
// the naive static policy, wasteful for heterogeneous fleets.
type EqualShare struct{}

// Name implements Arbiter.
func (EqualShare) Name() string { return "equal" }

// Split implements Arbiter.
func (EqualShare) Split(budgetW float64, tele []Telemetry) []float64 {
	w := make([]float64, len(tele))
	for i := range w {
		w[i] = 1
	}
	return divide(budgetW, w)
}

// Proportional splits the budget by reference maximum power — every
// machine runs at the same fraction of its own capacity, reproducing
// the paper's per-machine ConstantBudget when machines are identical.
type Proportional struct{}

// Name implements Arbiter.
func (Proportional) Name() string { return "proportional" }

// Split implements Arbiter.
func (Proportional) Split(budgetW float64, tele []Telemetry) []float64 {
	w := make([]float64, len(tele))
	for i, t := range tele {
		w[i] = t.RefMaxPowerW
	}
	return divide(budgetW, w)
}

// Headroom re-partitions the cap from last-slice demand: a machine
// drawing near its allotment — or one under visible stress (QoS
// violation, failed cores, degraded mode) — bids its full reference
// power, while one with slack bids less, releasing watts to
// contended siblings. Demand is the drawn fraction of last slice's
// allotment, and the bid keeps a floor so no machine is starved below
// a quarter of its proportional share:
//
//	bid = ref × (0.25 + 0.75 × demand)
//
// Before telemetry exists (or under stress) demand is 1, so the
// first slice degenerates to the Proportional split.
type Headroom struct{}

// Name implements Arbiter.
func (Headroom) Name() string { return "headroom" }

// Split implements Arbiter.
func (Headroom) Split(budgetW float64, tele []Telemetry) []float64 {
	w := make([]float64, len(tele))
	for i, t := range tele {
		demand := 1.0
		stressed := t.Violated || t.Degraded || t.FailedCores > 0
		if t.Valid && !stressed && t.BudgetW > 0 {
			demand = t.AvgPowerW / t.BudgetW
			if demand < 0 {
				demand = 0
			} else if demand > 1 {
				demand = 1
			}
		}
		w[i] = t.RefMaxPowerW * (0.25 + 0.75*demand)
	}
	return divide(budgetW, w)
}
