package fleet_test

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"cuttlesys/internal/config"
	"cuttlesys/internal/fault"
	"cuttlesys/internal/fleet"
	"cuttlesys/internal/harness"
	"cuttlesys/internal/sim"
	"cuttlesys/internal/workload"
)

// staticScheduler applies one fixed allocation with a configurable
// scheduling overhead — cheap enough to step many machines per test.
type staticScheduler struct {
	alloc    sim.Allocation
	overhead float64
}

func (s *staticScheduler) Name() string                               { return "static" }
func (s *staticScheduler) ProfilePhases(_, _ float64) []harness.Phase { return nil }
func (s *staticScheduler) Decide(_ []sim.PhaseResult, _, _ float64) (sim.Allocation, float64) {
	return s.alloc, s.overhead
}
func (s *staticScheduler) EndSlice(sim.PhaseResult, float64) {}

// testSpecs builds n identical machines with index-varied seeds and
// overheads (so serial and critical-path controller costs differ).
func testSpecs(t *testing.T, n int, inj map[int]harness.FaultInjector) []fleet.NodeSpec {
	t.Helper()
	lc, err := workload.ByName("silo")
	if err != nil {
		t.Fatal(err)
	}
	_, pool := workload.SplitTrainTest(1, 16)
	seeds := fleet.Seeds(42, n)
	specs := make([]fleet.NodeSpec, n)
	for i := range specs {
		m := sim.New(sim.Spec{
			Seed: seeds[i], LC: lc,
			Batch:          workload.Mix(seeds[i], pool, 8),
			Reconfigurable: true,
		})
		s := &staticScheduler{
			alloc:    sim.Uniform(8, true, 16, config.Widest, config.OneWay),
			overhead: 0.002 + 0.001*float64(i),
		}
		specs[i] = fleet.NodeSpec{Machine: m, Scheduler: harness.Single(s), Injector: inj[i]}
	}
	return specs
}

func runJSON(t *testing.T, workers, slices int) []byte {
	t.Helper()
	f, err := fleet.New(fleet.Config{Router: fleet.LeastLoaded{}, Arbiter: fleet.Headroom{}, Workers: workers},
		testSpecs(t, 4, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(slices, harness.DiurnalLoad(0.3, 0.9, 1.0), harness.ConstantBudget(0.7))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestParallelMatchesSerial is the determinism contract: the merged
// fleet result is byte-identical whether machines are stepped by one
// goroutine or many, under any GOMAXPROCS.
func TestParallelMatchesSerial(t *testing.T) {
	serial := runJSON(t, 1, 6)
	parallel := runJSON(t, 8, 6)
	if string(serial) != string(parallel) {
		t.Fatal("parallel stepping changed the fleet result")
	}
	prev := runtime.GOMAXPROCS(8)
	wide := runJSON(t, 8, 6)
	runtime.GOMAXPROCS(prev)
	if string(serial) != string(wide) {
		t.Fatal("GOMAXPROCS changed the fleet result")
	}
}

// fixedStatic promises its overhead up front, enabling the driver's
// decide/hold pipelining under Config.Pipeline.
type fixedStatic struct{ staticScheduler }

func (s *fixedStatic) DecisionOverheadSec() float64 { return s.overhead }

// pipelinedJSON mirrors runJSON with FixedOverhead schedulers and the
// Pipeline knob under test.
func pipelinedJSON(t *testing.T, workers, slices int, pipeline bool) ([]byte, uint64) {
	t.Helper()
	specs := testSpecs(t, 4, nil)
	for i := range specs {
		s := &fixedStatic{staticScheduler{
			alloc:    sim.Uniform(8, true, 16, config.Widest, config.OneWay),
			overhead: 0.002 + 0.001*float64(i),
		}}
		specs[i].Scheduler = harness.Single(s)
	}
	f, err := fleet.New(fleet.Config{Router: fleet.LeastLoaded{}, Arbiter: fleet.Headroom{}, Workers: workers, Pipeline: pipeline}, specs...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(slices, harness.DiurnalLoad(0.3, 0.9, 1.0), harness.ConstantBudget(0.7))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return buf, f.OverlapQuanta()
}

// TestPipelineMatchesSerial extends the determinism contract to
// Config.Pipeline: overlapping each machine's decide with its hold
// phase must leave the merged fleet result byte-identical, composed
// with parallel stepping or not, and the overlap must actually happen.
func TestPipelineMatchesSerial(t *testing.T) {
	const slices = 6
	serial, overlap0 := pipelinedJSON(t, 1, slices, false)
	if overlap0 != 0 {
		t.Fatalf("pipeline off but %d quanta overlapped", overlap0)
	}
	piped, overlap := pipelinedJSON(t, 1, slices, true)
	// Each machine's first slice has no previous allocation to hold.
	if want := uint64(4 * (slices - 1)); overlap != want {
		t.Fatalf("overlapped %d quanta, want %d", overlap, want)
	}
	if string(serial) != string(piped) {
		t.Fatal("pipelining changed the fleet result")
	}
	both, _ := pipelinedJSON(t, 8, slices, true)
	if string(serial) != string(both) {
		t.Fatal("pipelining composed with parallel stepping changed the fleet result")
	}
}

func TestFleetAccounting(t *testing.T) {
	n := 3
	f, err := fleet.New(fleet.Config{}, testSpecs(t, n, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	slices := 5
	res, err := f.Run(slices, harness.ConstantLoad(0.5), harness.ConstantBudget(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) != slices || len(res.Nodes) != n {
		t.Fatalf("got %d slices / %d nodes", len(res.Slices), len(res.Nodes))
	}
	if got := f.Now(); math.Abs(got-float64(slices)*harness.SliceDur) > 1e-9 {
		t.Fatalf("fleet clock %v after %d slices", got, slices)
	}
	for _, rec := range res.Slices {
		// Routed shares must conserve the offered load and the budget.
		sumQPS, sumW := 0.0, 0.0
		for i := range rec.NodeQPS {
			sumQPS += rec.NodeQPS[i]
			sumW += rec.NodeBudgetW[i]
		}
		if math.Abs(sumQPS-rec.OfferedQPS) > 1e-6*rec.OfferedQPS {
			t.Fatalf("shares %v sum to %v, offered %v", rec.NodeQPS, sumQPS, rec.OfferedQPS)
		}
		if math.Abs(sumW-rec.BudgetW) > 1e-6*rec.BudgetW {
			t.Fatalf("budget shares sum to %v, cap %v", sumW, rec.BudgetW)
		}
		if rec.PowerW <= 0 || rec.TotalInstrB <= 0 {
			t.Fatal("missing fleet accounting")
		}
		// Static overheads 2/3/4 ms: serial sum 9 ms, critical path 4 ms.
		if math.Abs(rec.OverheadSerialSec-0.009) > 1e-12 || math.Abs(rec.OverheadCritSec-0.004) > 1e-12 {
			t.Fatalf("overheads %v/%v", rec.OverheadSerialSec, rec.OverheadCritSec)
		}
	}
	if got, want := res.ModeledControllerSpeedup(), 0.009/0.004; math.Abs(got-want) > 1e-9 {
		t.Fatalf("modeled speedup %v, want %v", got, want)
	}
	for i, tele := range f.Telemetry() {
		if !tele.Valid || tele.Machine != i || tele.MaxQPS <= 0 {
			t.Fatalf("telemetry %d not populated: %+v", i, tele)
		}
	}
	for _, nr := range res.Nodes {
		if len(nr.Slices) != slices {
			t.Fatalf("node has %d slice records", len(nr.Slices))
		}
		if nr.Scheduler != "static" {
			t.Fatalf("node scheduler %q", nr.Scheduler)
		}
	}
}

func TestNewValidation(t *testing.T) {
	lc, err := workload.ByName("silo")
	if err != nil {
		t.Fatal(err)
	}
	_, pool := workload.SplitTrainTest(1, 16)
	mk := func(seed uint64, lcp *workload.Profile, extras []*workload.Profile) *sim.Machine {
		return sim.New(sim.Spec{Seed: seed, LC: lcp, ExtraLCs: extras, Batch: workload.Mix(seed, pool, 8), Reconfigurable: true})
	}
	sched := harness.Single(&staticScheduler{alloc: sim.Uniform(8, true, 16, config.Widest, config.OneWay)})

	if _, err := fleet.New(fleet.Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := fleet.New(fleet.Config{}, fleet.NodeSpec{Machine: nil, Scheduler: sched}); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := fleet.New(fleet.Config{}, fleet.NodeSpec{Machine: mk(1, lc, nil)}); err == nil {
		t.Error("nil scheduler accepted")
	}
	m := mk(1, lc, nil)
	if _, err := fleet.New(fleet.Config{},
		fleet.NodeSpec{Machine: m, Scheduler: sched},
		fleet.NodeSpec{Machine: m, Scheduler: sched}); err == nil {
		t.Error("shared simulator accepted")
	}
	if _, err := fleet.New(fleet.Config{}, fleet.NodeSpec{Machine: mk(1, nil, nil), Scheduler: sched}); err == nil {
		t.Error("batch-only machine accepted")
	}
	other, err := workload.ByName("xapian")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.New(fleet.Config{}, fleet.NodeSpec{Machine: mk(1, lc, []*workload.Profile{other}), Scheduler: sched}); err == nil {
		t.Error("multi-service machine accepted")
	}
}

// badRouter returns the wrong number of shares.
type badRouter struct{}

func (badRouter) Name() string                               { return "bad" }
func (badRouter) Route(float64, []fleet.Telemetry) []float64 { return []float64{1} }

func TestStepAndRunValidation(t *testing.T) {
	f, err := fleet.New(fleet.Config{}, testSpecs(t, 2, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(-1, 100); err == nil {
		t.Error("negative offered load accepted")
	}
	if _, err := f.Step(100, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := f.Run(0, harness.ConstantLoad(0.5), harness.ConstantBudget(0.7)); err == nil {
		t.Error("zero slices accepted")
	}
	if _, err := f.Run(3, nil, harness.ConstantBudget(0.7)); err == nil {
		t.Error("nil load pattern accepted")
	}
	if _, err := f.Run(3, harness.ConstantLoad(0.5), nil); err == nil {
		t.Error("nil budget pattern accepted")
	}

	fb, err := fleet.New(fleet.Config{Router: badRouter{}}, testSpecs(t, 2, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fb.Step(100, 100); err == nil {
		t.Error("mis-sized router output accepted")
	}
}

func TestSeeds(t *testing.T) {
	a, b := fleet.Seeds(7, 16), fleet.Seeds(7, 16)
	seen := make(map[uint64]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
		if seen[a[i]] {
			t.Fatalf("duplicate machine seed %d", a[i])
		}
		seen[a[i]] = true
	}
}

func tele(n int) []fleet.Telemetry {
	ts := make([]fleet.Telemetry, n)
	for i := range ts {
		ts[i] = fleet.Telemetry{
			Machine: i, MaxQPS: 1000, RefMaxPowerW: 100, Valid: true,
			QPS: 500, P99Ms: 2, QoSMs: 4, AvgPowerW: 60, BudgetW: 70,
		}
	}
	return ts
}

func TestRouters(t *testing.T) {
	ts := tele(3)
	uni := fleet.Uniform{}.Route(900, ts)
	for i, s := range uni {
		if math.Abs(s-300) > 1e-9 {
			t.Fatalf("uniform share %d = %v", i, s)
		}
	}

	// Least-loaded: a hot tail gets a smaller share.
	ts[1].P99Ms = 8 // at 2× target vs 0.5× for the others
	ll := fleet.LeastLoaded{}.Route(900, ts)
	if !(ll[1] < ll[0] && math.Abs(ll[0]-ll[2]) < 1e-9) {
		t.Fatalf("least-loaded shares %v", ll)
	}
	sum := ll[0] + ll[1] + ll[2]
	if math.Abs(sum-900) > 1e-6 {
		t.Fatalf("least-loaded shares %v sum to %v", ll, sum)
	}

	// QoS-aware: repeated violations decay a machine's share toward the
	// floor; recovery restores it.
	q := &fleet.QoSAware{}
	ts[1].Violated = true
	var shares []float64
	for i := 0; i < 6; i++ {
		shares = q.Route(900, ts)
	}
	if !(shares[1] < shares[0]/4) {
		t.Fatalf("qos-aware did not drain violating machine: %v", shares)
	}
	ts[1].Violated = false
	for i := 0; i < 20; i++ {
		shares = q.Route(900, ts)
	}
	if math.Abs(shares[1]-shares[0]) > 1e-9 {
		t.Fatalf("qos-aware did not restore recovered machine: %v", shares)
	}
}

func TestArbiters(t *testing.T) {
	ts := tele(2)
	ts[1].RefMaxPowerW = 300

	eq := fleet.EqualShare{}.Split(200, ts)
	if math.Abs(eq[0]-100) > 1e-9 || math.Abs(eq[1]-100) > 1e-9 {
		t.Fatalf("equal split %v", eq)
	}
	pr := fleet.Proportional{}.Split(200, ts)
	if math.Abs(pr[0]-50) > 1e-9 || math.Abs(pr[1]-150) > 1e-9 {
		t.Fatalf("proportional split %v", pr)
	}

	// Headroom: an idle machine releases watts to a loaded sibling.
	ts[1].RefMaxPowerW = 100
	ts[0].AvgPowerW, ts[0].BudgetW = 20, 100 // 20% demand
	ts[1].AvgPowerW, ts[1].BudgetW = 98, 100 // saturated
	hr := fleet.Headroom{}.Split(200, ts)
	if !(hr[0] < hr[1] && hr[0] > 0) {
		t.Fatalf("headroom split %v", hr)
	}
	// A stressed machine bids full reference power even with low draw.
	ts[0].Violated = true
	hr2 := fleet.Headroom{}.Split(200, ts)
	if hr2[0] <= hr[0] {
		t.Fatalf("stressed machine share did not grow: %v vs %v", hr2, hr)
	}

	// Degenerate telemetry falls back to an equal split.
	zero := []fleet.Telemetry{{}, {}}
	fb := fleet.Headroom{}.Split(200, zero)
	if math.Abs(fb[0]-100) > 1e-9 || math.Abs(fb[1]-100) > 1e-9 {
		t.Fatalf("degenerate fallback %v", fb)
	}
}

// TestDegradedNodeRouting attaches a fail-stop fault schedule to one
// machine of a QoS-aware fleet and requires the router to drain
// traffic from it while the fault is active.
func TestDegradedNodeRouting(t *testing.T) {
	inj, err := fault.NewSchedule(9, fault.Event{
		Kind: fault.CoreFailStop, Start: 0.2, End: 0.8, Cores: 7, BatchCores: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fleet.New(fleet.Config{Router: &fleet.QoSAware{}},
		testSpecs(t, 2, map[int]harness.FaultInjector{1: inj})...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(8, harness.ConstantLoad(0.35), harness.ConstantBudget(0.8))
	if err != nil {
		t.Fatal(err)
	}
	first := res.Slices[0]
	if math.Abs(first.NodeQPS[0]-first.NodeQPS[1]) > 1e-6 {
		t.Fatalf("pre-fault split not even: %v", first.NodeQPS)
	}
	// By the end of the fault window the faulty machine's share must
	// have collapsed relative to its healthy sibling.
	late := res.Slices[6]
	if late.NodeQPS[1] > late.NodeQPS[0]/2 {
		t.Fatalf("router did not drain faulty machine: %v", late.NodeQPS)
	}
}
