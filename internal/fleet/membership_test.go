package fleet_test

import (
	"encoding/json"
	"math"
	"testing"

	"cuttlesys/internal/fleet"
)

// churnJSON runs a fixed membership-churn script — join mid-run, evict
// mid-run — and returns the marshalled result.
func churnJSON(t *testing.T, workers int) []byte {
	t.Helper()
	specs := testSpecs(t, 4, nil)
	f, err := fleet.New(fleet.Config{Router: fleet.LeastLoaded{}, Arbiter: fleet.Headroom{}, Workers: workers},
		specs[:3]...)
	if err != nil {
		t.Fatal(err)
	}
	step := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := f.Step(0.5*f.CapacityQPS(), 0.7*f.RefPowerW()); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(2)
	if id, err := f.Attach(specs[3]); err != nil || id != 3 {
		t.Fatalf("attach: id %d, err %v", id, err)
	}
	step(2)
	if err := f.Evict(1); err != nil {
		t.Fatal(err)
	}
	step(2)
	buf, err := json.Marshal(f.Result())
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestMembershipChurn exercises join and evict mid-run: the stepping
// set, capacity, per-slice Members and per-node histories must all
// track membership, and the joining machine must share the fleet
// clock.
func TestMembershipChurn(t *testing.T) {
	specs := testSpecs(t, 4, nil)
	f, err := fleet.New(fleet.Config{}, specs[:3]...)
	if err != nil {
		t.Fatal(err)
	}
	capBefore := f.CapacityQPS()
	run := func(n int) []fleet.SliceRecord {
		t.Helper()
		var out []fleet.SliceRecord
		for i := 0; i < n; i++ {
			rec, err := f.Step(0.5*f.CapacityQPS(), 0.7*f.RefPowerW())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rec)
		}
		return out
	}
	pre := run(2)
	if got := pre[1].Members; len(got) != 3 {
		t.Fatalf("pre-churn members %v", got)
	}

	// Join: the new machine fast-forwards to the fleet clock and serves
	// from the next slice.
	id, err := f.Attach(specs[3])
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 || f.Size() != 4 || f.Slots() != 4 {
		t.Fatalf("attach id %d size %d slots %d", id, f.Size(), f.Slots())
	}
	if got := specs[3].Machine.Now(); math.Abs(got-f.Now()) > 1e-12 {
		t.Fatalf("joined machine clock %v, fleet clock %v", got, f.Now())
	}
	if f.CapacityQPS() <= capBefore {
		t.Fatal("capacity did not grow on join")
	}
	mid := run(2)
	if got := mid[0].Members; len(got) != 4 || got[3] != 3 {
		t.Fatalf("post-join members %v", got)
	}
	if mid[0].NodeQPS[3] <= 0 {
		t.Fatalf("joined machine got no traffic: %v", mid[0].NodeQPS)
	}
	if math.Abs(mid[0].T-specRecordT(t, f, 3, 0)) > 1e-12 {
		t.Fatal("joined machine's first slice not on the fleet timeline")
	}

	// Evict: the machine leaves the stepping set but keeps its history.
	if err := f.Evict(1); err != nil {
		t.Fatal(err)
	}
	if f.IsActive(1) || f.Size() != 3 || f.Slots() != 4 {
		t.Fatalf("evict bookkeeping: active %v size %d slots %d", f.IsActive(1), f.Size(), f.Slots())
	}
	post := run(2)
	if got := post[0].Members; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("post-evict members %v", got)
	}
	res := f.Result()
	if len(res.Nodes) != 4 {
		t.Fatalf("%d node histories", len(res.Nodes))
	}
	if got := len(res.Nodes[1].Slices); got != 4 {
		t.Fatalf("evicted machine has %d slice records, want 4", got)
	}
	if got := len(res.Nodes[3].Slices); got != 4 {
		t.Fatalf("joined machine has %d slice records, want 4", got)
	}

	// Error paths.
	if err := f.Evict(1); err == nil {
		t.Error("double evict accepted")
	}
	if err := f.Evict(99); err == nil {
		t.Error("unknown machine evicted")
	}
	for _, rem := range []int{0, 2, 3} {
		if err := f.Evict(rem); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Step(100, 100); err == nil {
		t.Error("empty fleet stepped")
	}
}

// specRecordT digs machine id's slice-record start time out of the
// fleet result.
func specRecordT(t *testing.T, f *fleet.Fleet, id, slice int) float64 {
	t.Helper()
	res := f.Result()
	if id >= len(res.Nodes) || slice >= len(res.Nodes[id].Slices) {
		t.Fatalf("no record for machine %d slice %d", id, slice)
	}
	return res.Nodes[id].Slices[slice].T
}

// TestMembershipChurnDeterministic extends the fleet's determinism
// contract to membership churn: a join plus an evict mid-run must
// produce byte-identical results under serial and parallel stepping.
func TestMembershipChurnDeterministic(t *testing.T) {
	serial := churnJSON(t, 1)
	parallel := churnJSON(t, 8)
	if string(serial) != string(parallel) {
		t.Fatal("membership churn result depends on stepping parallelism")
	}
}

// flapTele alternates one machine between violated and healthy.
func flapTele(n, flapper int, badSlice bool) []fleet.Telemetry {
	ts := tele(n)
	ts[flapper].Violated = badSlice
	return ts
}

// TestQoSAwareFlapStorm is the recovery-asymmetry regression: under a
// long flap storm the weight must stay strictly positive (it decays to
// the floor, never to zero), and once the storm ends the machine must
// converge back to exactly full weight — including from a pathological
// subnormal floor where the old purely multiplicative recovery (w×1.25
// rounding back to w) starved the machine forever.
func TestQoSAwareFlapStorm(t *testing.T) {
	q := &fleet.QoSAware{}
	for i := 0; i < 400; i++ {
		q.Route(900, flapTele(3, 1, i%2 == 0))
		if w := q.Weight(1); !(w > 0) {
			t.Fatalf("weight hit zero at flap slice %d", i)
		}
	}
	if w := q.Weight(1); w > 0.1 {
		t.Fatalf("storm did not drain the flapper: weight %v", w)
	}
	var shares []float64
	for i := 0; i < 30; i++ {
		shares = q.Route(900, flapTele(3, 1, false))
	}
	if w := q.Weight(1); w != 1 {
		t.Fatalf("weight %v after recovery, want exactly 1", w)
	}
	if math.Abs(shares[1]-shares[0]) > 1e-9 {
		t.Fatalf("recovered machine not at full share: %v", shares)
	}

	// Subnormal floor: decay all the way down, then require bounded
	// recovery. Multiplicative-only recovery is a fixed point here.
	qs := &fleet.QoSAware{Floor: 5e-324}
	for i := 0; i < 1200; i++ {
		qs.Route(900, flapTele(2, 1, true))
	}
	if w := qs.Weight(1); !(w > 0) {
		t.Fatal("subnormal floor underflowed to zero")
	}
	for i := 0; i < 40; i++ {
		qs.Route(900, flapTele(2, 1, false))
	}
	if w := qs.Weight(1); w != 1 {
		t.Fatalf("subnormal-floor weight %v after 40 healthy slices, want 1", w)
	}

	// Symmetric AIMD (Recover 2): drain and restore at the same rate.
	sym := &fleet.QoSAware{Recover: 2}
	for i := 0; i < 6; i++ {
		sym.Route(900, flapTele(2, 1, true))
	}
	for i := 0; i < 6; i++ {
		sym.Route(900, flapTele(2, 1, false))
	}
	if w := sym.Weight(1); w != 1 {
		t.Fatalf("symmetric recovery incomplete after matching healthy slices: %v", w)
	}
}

// TestQoSAwareMembershipStable pins the id-keyed weight contract: a
// machine vanishing from the routed set (quarantine, eviction) and
// later reappearing keeps its decayed weight — the old length-keyed
// state silently reset every weight to 1 whenever N changed.
func TestQoSAwareMembershipStable(t *testing.T) {
	q := &fleet.QoSAware{}
	full := tele(3)
	full[1].Violated = true
	for i := 0; i < 4; i++ {
		q.Route(900, full)
	}
	drained := q.Weight(1)
	if drained >= 0.2 {
		t.Fatalf("setup: weight %v not drained", drained)
	}

	// Machine 1 leaves the routed view; the survivors' weights and the
	// absentee's must be untouched.
	sub := []fleet.Telemetry{full[0], full[2]}
	q.Route(900, sub)
	if w := q.Weight(1); w != drained {
		t.Fatalf("absent machine's weight changed: %v -> %v", drained, w)
	}
	if w := q.Weight(0); w != 1 {
		t.Fatalf("survivor weight reset: %v", w)
	}

	// It returns healthy: recovery resumes from the decayed weight, not
	// from a reset.
	healthy := tele(3)
	shares := q.Route(900, healthy)
	if !(shares[1] < shares[0]) {
		t.Fatalf("returning machine served at full weight immediately: %v", shares)
	}

	// A brand-new id starts at full weight.
	grown := append(healthy, fleet.Telemetry{Machine: 7, MaxQPS: 1000, RefMaxPowerW: 100})
	q.Route(900, grown)
	if w := q.Weight(7); w != 1 {
		t.Fatalf("new machine weight %v", w)
	}
}
