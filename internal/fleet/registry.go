package fleet

import "fmt"

// RouterByName builds a fresh router from its policy name — the same
// names the routers report via Name(). Stateful routers (qos-aware)
// are constructed new on every call, so two runs never share weight
// state. Data-driven drivers (scenario specs, sweep tables) resolve
// policies through this registry instead of switching on strings.
func RouterByName(name string) (Router, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "qos-aware":
		return &QoSAware{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown router %q", name)
}

// ArbiterByName builds an arbiter from its policy name, mirroring
// RouterByName.
func ArbiterByName(name string) (Arbiter, error) {
	switch name {
	case "equal":
		return EqualShare{}, nil
	case "proportional":
		return Proportional{}, nil
	case "headroom":
		return Headroom{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown arbiter %q", name)
}
