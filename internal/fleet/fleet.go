// Package fleet simulates a cluster of CuttleSys machines behind a
// traffic router under one shared power budget — the production
// setting the ROADMAP targets, where a datacenter serves one
// latency-critical service from many reconfigurable CMPs and a
// cluster-level power cap must be split across them.
//
// Each decision quantum (harness.SliceDur) the fleet:
//
//  1. asks its Router to split the offered cluster QPS across
//     machines, using last-slice telemetry (tail latency, failures,
//     degraded mode) — uniform, least-loaded and QoS-aware policies
//     are provided;
//  2. asks its Arbiter to partition the cluster watt cap, generalising
//     §VIII-D's per-machine budget patterns to cross-machine
//     arbitration from reported headroom;
//  3. steps every machine one timeslice in parallel through
//     harness.Driver, merging results in machine index order so the
//     outcome is byte-identical regardless of goroutine interleaving
//     (the determinism invariant, DESIGN.md §7);
//  4. folds per-machine slice records into fleet metrics: throughput,
//     per-machine tail latency, QoS-met fraction and power.
//
// Determinism under parallelism follows three rules. All cross-machine
// reductions (routing weights, budget shares, fleet aggregates) run
// serially in machine index order before or after the parallel
// section. The parallel section touches only per-machine state plus
// one pre-sized result cell per machine. And telemetry always lags one
// slice: machine i's inputs for slice t depend only on slice t-1
// outputs, never on a sibling's slice-t progress.
package fleet

import (
	"fmt"
	"math"

	"cuttlesys/internal/harness"
	"cuttlesys/internal/obs"
	"cuttlesys/internal/rng"
	"cuttlesys/internal/sim"
)

// Telemetry is one machine's router- and arbiter-visible state: static
// capacity plus the outcome of its most recent timeslice. It is the
// only cross-machine information the policies may use, and it always
// describes the previous slice — the current slice is still being
// computed when routing decisions are made.
type Telemetry struct {
	// Machine is the node's index in the fleet.
	Machine int
	// MaxQPS is the machine's primary service capacity.
	MaxQPS float64
	// RefMaxPowerW is the machine's reference maximum power draw.
	RefMaxPowerW float64
	// Valid is false until the machine completes its first slice; the
	// dynamic fields below are meaningless while it is false.
	Valid bool
	// QPS is the load the router offered the machine last slice.
	QPS float64
	// P99Ms and QoSMs are last slice's tail latency and target.
	P99Ms float64
	QoSMs float64
	// Violated reports whether the machine missed QoS last slice.
	Violated bool
	// AvgPowerW and BudgetW are last slice's draw and allotment.
	AvgPowerW float64
	BudgetW   float64
	// FailedCores counts cores lost to fail-stop faults last slice.
	FailedCores int
	// Degraded reports the scheduler's degraded (safe) mode.
	Degraded bool
}

// NodeSpec describes one machine joining a fleet: its simulator, the
// scheduler driving it, and an optional per-machine fault injector so
// routing policies can be exercised against a degraded node.
type NodeSpec struct {
	Machine   *sim.Machine
	Scheduler harness.MultiScheduler
	Injector  harness.FaultInjector
}

// Config tunes a Fleet. Zero values select the uniform router, the
// capacity-proportional arbiter, and one stepping worker per machine.
type Config struct {
	// Router splits offered QPS across machines each slice.
	Router Router
	// Arbiter splits the cluster power budget each slice.
	Arbiter Arbiter
	// Workers bounds the goroutines stepping machines in parallel;
	// <= 0 means one per machine. The value never affects results,
	// only wall-clock time.
	Workers int
	// Collector receives observability output. Each machine's driver
	// gets an obs.ForMachine view (events and series stamped with the
	// machine index); fleet-level routing, arbitration and aggregates
	// are emitted at cluster scope. Nil disables observability at zero
	// cost. Simulated-time output stays byte-deterministic only if the
	// schedulers themselves are deterministic per slice — in particular
	// SGD reconstruction must run with Workers=1 on traced runs.
	Collector obs.Collector
	// Share, when non-nil, is invoked after every slice's index-ordered
	// fold (serially, at cluster scope) with the active membership —
	// the hook the model-sharing plane (internal/modelplane) uses to
	// collect factor publications and fold fleet aggregates. Because it
	// runs in the serial section and members arrive in ascending id
	// order, anything it computes inherits the fleet's byte-determinism
	// at any GOMAXPROCS. Nil (the default) disables sharing at zero
	// cost.
	Share SharePlane
	// Pipeline enables intra-machine phase pipelining on every attached
	// driver (harness.Params.Pipeline): decision compute overlaps the
	// hold phase for FixedOverhead schedulers, bit-identical to the
	// serial schedule. It composes with Workers — machines run in
	// parallel across the fleet AND each machine overlaps its own
	// decide/hold phases. No effect on traced runs (the driver's
	// observability gate keeps event order deterministic).
	Pipeline bool
}

// ShareMember is one active machine as seen by the SharePlane hook:
// its stable id plus the scheduler stepping it, which the plane
// type-asserts for factor export/import capability.
type ShareMember struct {
	ID        int
	Scheduler harness.MultiScheduler
}

// SharePlane receives the post-fold hook each slice. slice is the
// fleet slice index just completed, now its start time in seconds, and
// members the machines stepped, ascending by id.
type SharePlane interface {
	AfterSlice(slice int, now float64, members []ShareMember)
}

// node is one machine's private state. Its index in Fleet.nodes is the
// machine's stable identity for the fleet's whole life: a machine that
// leaves keeps its slot (and its accumulated slice records), so ids in
// telemetry, traces and membership logs never shift under churn.
type node struct {
	d         *harness.Driver
	inj       harness.FaultInjector
	maxQPS    float64
	maxPowerW float64
	qosMs     float64
	recs      []harness.SliceRecord
	// left marks an evicted machine: it no longer receives traffic,
	// budget or stepping, but its history stays addressable by id.
	left bool
}

// Fleet is a cluster of CuttleSys machines stepped in lockstep.
// Membership is dynamic: machines join via Attach and leave via Evict
// between slices, and each slice routes, arbitrates and steps only the
// active set. All membership operations are serial (never inside the
// parallel stepping section), so runs remain byte-deterministic.
type Fleet struct {
	nodes    []*node
	router   Router
	arbiter  Arbiter
	workers  int
	pipeline bool
	now      float64
	tele     []Telemetry
	slices   []SliceRecord
	obs      obs.Collector
	share    SharePlane
}

// New assembles a fleet. Every machine must host exactly one
// latency-critical service (the router shards a single service's
// traffic) and have its own simulator instance.
func New(cfg Config, specs ...NodeSpec) (*Fleet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("fleet: no machines")
	}
	f := &Fleet{
		router:   cfg.Router,
		arbiter:  cfg.Arbiter,
		workers:  cfg.Workers,
		pipeline: cfg.Pipeline,
		obs:      obs.OrNop(cfg.Collector),
		share:    cfg.Share,
	}
	if f.router == nil {
		f.router = Uniform{}
	}
	if f.arbiter == nil {
		f.arbiter = Proportional{}
	}
	for _, spec := range specs {
		if _, err := f.Attach(spec); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Attach admits a machine to the fleet and returns its stable id. On a
// running fleet the new machine is fast-forwarded to the fleet clock
// (it executes nothing for the skipped time) and first appears in the
// next slice's routing and arbitration; its telemetry stays invalid
// until it completes that slice. Validation matches New: one
// latency-critical service, a private simulator instance.
func (f *Fleet) Attach(spec NodeSpec) (int, error) {
	id := len(f.nodes)
	if spec.Machine == nil {
		return 0, fmt.Errorf("fleet: machine %d is nil", id)
	}
	for prev, nd := range f.nodes {
		if nd.d.Machine() == spec.Machine {
			return 0, fmt.Errorf("fleet: machine %d reuses machine %d's simulator", id, prev)
		}
	}
	if spec.Machine.LC() == nil {
		return 0, fmt.Errorf("fleet: machine %d hosts no latency-critical service", id)
	}
	if extra := len(spec.Machine.ExtraLCs()); extra > 0 {
		return 0, fmt.Errorf("fleet: machine %d hosts %d extra services; the router shards a single service", id, extra)
	}
	d, err := harness.NewDriver(spec.Machine, spec.Scheduler, spec.Injector)
	if err != nil {
		return 0, fmt.Errorf("fleet: machine %d: %w", id, err)
	}
	d.SetParams(harness.Params{Pipeline: f.pipeline})
	d.SetCollector(obs.ForMachine(f.obs, id))
	spec.Machine.FastForward(f.now)
	lc := spec.Machine.LC()
	f.nodes = append(f.nodes, &node{
		d:         d,
		inj:       spec.Injector,
		maxQPS:    lc.MaxQPS,
		maxPowerW: spec.Machine.MaxPowerW(),
		qosMs:     lc.QoSTargetMs,
	})
	f.tele = append(f.tele, Telemetry{
		Machine: id, MaxQPS: lc.MaxQPS, RefMaxPowerW: spec.Machine.MaxPowerW(),
	})
	return id, nil
}

// Evict removes machine id from the stepping set: it receives no
// further traffic or budget and its fault injector is detached. The
// slot, its telemetry snapshot and its slice history remain
// addressable by id; the simulator is not reusable in this fleet.
func (f *Fleet) Evict(id int) error {
	if id < 0 || id >= len(f.nodes) {
		return fmt.Errorf("fleet: evict of unknown machine %d", id)
	}
	nd := f.nodes[id]
	if nd.left {
		return fmt.Errorf("fleet: machine %d already evicted", id)
	}
	nd.d.Detach()
	nd.left = true
	return nil
}

// Active returns the ids of machines currently in the stepping set, in
// ascending id order — the order routing, arbitration and per-slice
// record arrays follow.
func (f *Fleet) Active() []int {
	ids := make([]int, 0, len(f.nodes))
	for i, nd := range f.nodes {
		if !nd.left {
			ids = append(ids, i)
		}
	}
	return ids
}

// IsActive reports whether machine id is in the stepping set.
func (f *Fleet) IsActive(id int) bool {
	return id >= 0 && id < len(f.nodes) && !f.nodes[id].left
}

// Seeds derives n machine seeds from one fleet seed so sibling
// machines never share an RNG stream (the seed discipline of
// DESIGN.md §2 extended across a cluster).
func Seeds(seed uint64, n int) []uint64 {
	r := rng.New(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// Size returns the number of active machines. Slots reports the total
// slot count including evicted machines.
func (f *Fleet) Size() int { return len(f.Active()) }

// Slots returns the number of machine slots ever admitted, including
// evicted ones — the exclusive upper bound on machine ids.
func (f *Fleet) Slots() int { return len(f.nodes) }

// CapacityQPS is the fleet's aggregate service capacity — the sum of
// every active machine's max QPS, the reference for load fractions.
func (f *Fleet) CapacityQPS() float64 {
	sum := 0.0
	for _, nd := range f.nodes {
		if !nd.left {
			sum += nd.maxQPS
		}
	}
	return sum
}

// RefPowerW is the fleet's aggregate reference maximum power over
// active machines — the reference for cluster budget fractions.
func (f *Fleet) RefPowerW() float64 {
	sum := 0.0
	for _, nd := range f.nodes {
		if !nd.left {
			sum += nd.maxPowerW
		}
	}
	return sum
}

// Now returns the fleet clock in seconds.
func (f *Fleet) Now() float64 { return f.now }

// Telemetry returns the latest per-slot telemetry (read-only), indexed
// by stable machine id. Evicted machines keep their last snapshot;
// routers and arbiters only ever see the active subset.
func (f *Fleet) Telemetry() []Telemetry { return f.tele }

// OverlapQuanta sums, over every machine (evicted included), the
// slices whose decision compute ran concurrently with the hold phase
// (Config.Pipeline). Zero when pipelining is off or no scheduler is
// FixedOverhead.
func (f *Fleet) OverlapQuanta() uint64 {
	var total uint64
	for _, nd := range f.nodes {
		total += nd.d.OverlapQuanta()
	}
	return total
}

// SurfaceStats sums every machine's surface-table work counters:
// staged-grid renders and fast-path lookups served.
func (f *Fleet) SurfaceStats() (builds, lookups uint64) {
	for _, nd := range f.nodes {
		b, l := nd.d.Machine().SurfaceStats()
		builds += b
		lookups += l
	}
	return builds, lookups
}

// Close detaches every machine's fault injector. The fleet remains
// usable for inspection but must not be stepped again.
func (f *Fleet) Close() {
	for _, nd := range f.nodes {
		nd.d.Detach()
	}
}

// SliceRecord captures one fleet decision quantum.
type SliceRecord struct {
	// T is the slice start time in seconds.
	T float64
	// OfferedQPS and BudgetW are the cluster-level inputs, before any
	// per-machine fault perturbation.
	OfferedQPS float64
	BudgetW    float64
	// Members are the stable ids of the machines stepped this slice, in
	// ascending order; every per-machine array below is index-aligned
	// with it.
	Members []int
	// NodeQPS and NodeBudgetW are the per-machine splits actually
	// applied (after per-machine fault factors).
	NodeQPS     []float64
	NodeBudgetW []float64
	// NodeP99Ms and NodeViolated are per-machine tail outcomes.
	NodeP99Ms    []float64
	NodeViolated []bool
	// QoSMetFrac is the fraction of machines that met QoS.
	QoSMetFrac float64
	// PowerW is the fleet's aggregate average power draw.
	PowerW float64
	// TotalInstrB is the fleet's batch throughput this slice.
	TotalInstrB float64
	// MeanGmeanBIPS averages the per-machine batch gmean BIPS.
	MeanGmeanBIPS float64
	// OverheadSerialSec sums every machine's scheduling compute — the
	// controller cost if one sequential controller served the fleet.
	// OverheadCritSec is the maximum — the critical path when
	// controllers run in parallel. Their ratio is the modeled
	// controller speedup of parallel stepping.
	OverheadSerialSec float64
	OverheadCritSec   float64
}

// Step runs one decision quantum: route offered QPS, split budgetW,
// step every machine in parallel, and fold the results.
func (f *Fleet) Step(offered, budgetW float64) (SliceRecord, error) {
	if offered < 0 || math.IsNaN(offered) {
		return SliceRecord{}, fmt.Errorf("fleet: invalid offered load %v", offered)
	}
	if budgetW <= 0 || math.IsNaN(budgetW) {
		return SliceRecord{}, fmt.Errorf("fleet: non-positive budget %v W", budgetW)
	}
	act := f.Active()
	n := len(act)
	if n == 0 {
		return SliceRecord{}, fmt.Errorf("fleet: no active machines")
	}
	t := f.now
	traced := f.obs.Enabled()
	sliceWall := obs.BeginWall(f.obs)

	// Routing and arbitration see only the active machines, in id
	// order; Telemetry.Machine carries the stable id so stateful
	// policies survive membership churn.
	actTele := make([]Telemetry, n)
	for k, id := range act {
		actTele[k] = f.tele[id]
	}
	qpsShares := f.router.Route(offered, actTele)
	if len(qpsShares) != n {
		return SliceRecord{}, fmt.Errorf("fleet: router %s returned %d shares for %d machines",
			f.router.Name(), len(qpsShares), n)
	}
	budgets := f.arbiter.Split(budgetW, actTele)
	if len(budgets) != n {
		return SliceRecord{}, fmt.Errorf("fleet: arbiter %s returned %d shares for %d machines",
			f.arbiter.Name(), len(budgets), n)
	}
	if traced {
		sl := len(f.slices)
		f.obs.Emit(obs.Instant(obs.EventRoute, t).WithMachine(obs.ClusterMachine).
			WithSlice(sl).With("router", f.router.Name()))
		f.obs.Emit(obs.Instant(obs.EventArbitrate, t).WithMachine(obs.ClusterMachine).
			WithSlice(sl).With("arbiter", f.arbiter.Name()))
	}

	// Per-machine inputs, perturbed by that machine's faults exactly as
	// the single-machine harness would (flash crowds scale load, budget
	// drops scale the allotment).
	qps := make([]float64, n)
	loadFrac := make([]float64, n)
	for k, id := range act {
		nd := f.nodes[id]
		if qpsShares[k] < 0 || math.IsNaN(qpsShares[k]) {
			return SliceRecord{}, fmt.Errorf("fleet: router %s: invalid share %v for machine %d",
				f.router.Name(), qpsShares[k], id)
		}
		if budgets[k] <= 0 || math.IsNaN(budgets[k]) {
			return SliceRecord{}, fmt.Errorf("fleet: arbiter %s: invalid share %v W for machine %d",
				f.arbiter.Name(), budgets[k], id)
		}
		qps[k] = qpsShares[k]
		if nd.inj != nil {
			qps[k] *= nd.inj.LoadFactor(t)
			budgets[k] *= nd.inj.BudgetFactor(t)
		}
		if nd.maxQPS > 0 {
			loadFrac[k] = qps[k] / nd.maxQPS
		}
	}

	stepWall := obs.BeginWall(f.obs)
	recs, err := f.stepAll(act, qps, loadFrac, budgets)
	stepWall.End(f.obs, "fleet.step")
	if err != nil {
		return SliceRecord{}, err
	}

	// Index-ordered fold: telemetry for the next slice plus this
	// slice's fleet record.
	rec := SliceRecord{
		T: t, OfferedQPS: offered, BudgetW: budgetW,
		Members: act,
		NodeQPS: qps, NodeBudgetW: budgets,
		NodeP99Ms:    make([]float64, n),
		NodeViolated: make([]bool, n),
	}
	met := 0
	for k, id := range act {
		nd := f.nodes[id]
		r := recs[k]
		nd.recs = append(nd.recs, r)
		f.tele[id] = Telemetry{
			Machine: id, MaxQPS: nd.maxQPS, RefMaxPowerW: nd.maxPowerW,
			Valid: true, QPS: qps[k],
			P99Ms: r.P99Ms, QoSMs: r.QoSMs, Violated: r.Violated,
			AvgPowerW: r.AvgPowerW, BudgetW: budgets[k],
			FailedCores: r.FailedCores, Degraded: r.Degraded,
		}
		rec.NodeP99Ms[k] = r.P99Ms
		rec.NodeViolated[k] = r.Violated
		if !r.Violated {
			met++
		}
		rec.PowerW += r.AvgPowerW
		rec.TotalInstrB += r.TotalInstrB
		rec.MeanGmeanBIPS += r.GmeanBIPS / float64(n)
		rec.OverheadSerialSec += r.OverheadSec
		if r.OverheadSec > rec.OverheadCritSec {
			rec.OverheadCritSec = r.OverheadSec
		}
	}
	rec.QoSMetFrac = float64(met) / float64(n)
	if traced {
		f.emitFleetTelemetry(&rec, len(f.slices))
	}
	if f.share != nil {
		// Serial section, ascending id order: the share plane's folds
		// inherit the fleet's determinism discipline.
		members := make([]ShareMember, n)
		for k, id := range act {
			members[k] = ShareMember{ID: id, Scheduler: f.nodes[id].d.Scheduler()}
		}
		f.share.AfterSlice(len(f.slices), t, members)
	}
	f.slices = append(f.slices, rec)
	f.now += harness.SliceDur
	sliceWall.End(f.obs, "fleet.slice")
	return rec, nil
}

// Run executes slices decision quanta under cluster-level load and
// budget patterns: load yields the offered fraction of CapacityQPS,
// budget the fraction of RefPowerW, both sampled at the fleet clock.
// Repeated Runs continue the clock and accumulate into Result.
func (f *Fleet) Run(slices int, load harness.LoadPattern, budget harness.BudgetPattern) (*Result, error) {
	if slices <= 0 {
		return nil, fmt.Errorf("fleet: non-positive slice count %d", slices)
	}
	if load == nil {
		return nil, fmt.Errorf("fleet: nil load pattern")
	}
	if budget == nil {
		return nil, fmt.Errorf("fleet: nil budget pattern")
	}
	// Capacity and reference power are resampled every slice: a caller
	// (or control plane) may change membership between Runs or steps.
	for sl := 0; sl < slices; sl++ {
		if _, err := f.Step(load(f.now)*f.CapacityQPS(), budget(f.now)*f.RefPowerW()); err != nil {
			return nil, err
		}
	}
	return f.Result(), nil
}

// Result snapshots the fleet's accumulated history: the fleet-level
// slice records plus one harness.Result per machine slot (indexed by
// stable id, evicted machines included with their partial histories),
// so every single-machine aggregate remains available per node.
func (f *Fleet) Result() *Result {
	res := &Result{
		Router:  f.router.Name(),
		Arbiter: f.arbiter.Name(),
		Slices:  append([]SliceRecord(nil), f.slices...),
	}
	for _, nd := range f.nodes {
		res.Nodes = append(res.Nodes, &harness.Result{
			Scheduler: nd.d.Scheduler().Name(),
			Slices:    append([]harness.SliceRecord(nil), nd.recs...),
		})
	}
	return res
}

// Result aggregates a fleet run.
type Result struct {
	Router  string
	Arbiter string
	Slices  []SliceRecord
	// Nodes holds each machine's single-machine result, index-aligned
	// with the fleet's machines.
	Nodes []*harness.Result
}

// QoSMetFraction is the fraction of (machine, slice) cells that met
// QoS over the whole run.
func (r *Result) QoSMetFraction() float64 {
	if len(r.Slices) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.Slices {
		sum += s.QoSMetFrac
	}
	return sum / float64(len(r.Slices))
}

// TotalInstrB is the fleet's batch throughput over the run, in
// billions of instructions.
func (r *Result) TotalInstrB() float64 {
	sum := 0.0
	for _, s := range r.Slices {
		sum += s.TotalInstrB
	}
	return sum
}

// MeanPowerW is the fleet's mean aggregate power draw.
func (r *Result) MeanPowerW() float64 {
	if len(r.Slices) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.Slices {
		sum += s.PowerW
	}
	return sum / float64(len(r.Slices))
}

// WorstP99Ratio is the worst per-machine p99/QoS ratio over the run.
func (r *Result) WorstP99Ratio() float64 {
	worst := 0.0
	for _, nr := range r.Nodes {
		if v := nr.WorstP99Ratio(); v > worst {
			worst = v
		}
	}
	return worst
}

// QoSViolations counts (machine, slice) QoS misses over the run.
func (r *Result) QoSViolations() int {
	n := 0
	for _, nr := range r.Nodes {
		n += nr.QoSViolations()
	}
	return n
}

// ModeledControllerSpeedup is total serial scheduling compute divided
// by the parallel critical path — the controller-side speedup a
// cluster gains by running one scheduler per machine concurrently
// instead of a single sequential controller. It is derived from the
// schedulers' own charged overheads (Table II's modeled costs), so it
// is deterministic and host-independent, unlike a wall-clock timing.
func (r *Result) ModeledControllerSpeedup() float64 {
	serial, crit := 0.0, 0.0
	for _, s := range r.Slices {
		serial += s.OverheadSerialSec
		crit += s.OverheadCritSec
	}
	if crit == 0 {
		return 1
	}
	return serial / crit
}
