package fleet

import "math"

// A Router splits the fleet's offered QPS across machines each slice.
// Route must return one non-negative share per telemetry entry,
// summing (up to float rounding) to offered; it may keep per-fleet
// state, since the fleet calls it serially, once per slice, with
// telemetry in machine index order. Implementations must not mutate
// the telemetry slice.
type Router interface {
	Name() string
	Route(offered float64, tele []Telemetry) []float64
}

// divide turns routing weights into absolute QPS shares. The sum runs
// in index order (determinism), non-finite or negative weights are
// dropped, and a degenerate weight vector falls back to an equal
// split so traffic is always conserved.
func divide(offered float64, w []float64) []float64 {
	out := make([]float64, len(w))
	sum := 0.0
	for _, v := range w {
		if v > 0 && !math.IsInf(v, 1) {
			sum += v
		}
	}
	if sum <= 0 || math.IsInf(sum, 1) {
		for i := range out {
			out[i] = offered / float64(len(w))
		}
		return out
	}
	for i, v := range w {
		if v > 0 && !math.IsInf(v, 1) {
			out[i] = offered * v / sum
		}
	}
	return out
}

// Uniform splits traffic equally across machines, ignoring telemetry —
// the baseline round-robin load balancer.
type Uniform struct{}

// Name implements Router.
func (Uniform) Name() string { return "uniform" }

// Route implements Router.
func (Uniform) Route(offered float64, tele []Telemetry) []float64 {
	w := make([]float64, len(tele))
	for i := range w {
		w[i] = 1
	}
	return divide(offered, w)
}

// LeastLoaded weights each machine by capacity discounted by how close
// its last-slice tail latency ran to target: weight ∝ maxQPS / (1 +
// p99/QoS). A machine whose tail is twice its target gets a third the
// per-capacity traffic of an idle one; before any telemetry exists the
// split is capacity-proportional.
type LeastLoaded struct{}

// Name implements Router.
func (LeastLoaded) Name() string { return "least-loaded" }

// Route implements Router.
func (LeastLoaded) Route(offered float64, tele []Telemetry) []float64 {
	w := make([]float64, len(tele))
	for i, t := range tele {
		w[i] = t.MaxQPS
		if t.Valid && t.QoSMs > 0 && t.P99Ms > 0 {
			w[i] = t.MaxQPS / (1 + t.P99Ms/t.QoSMs)
		}
	}
	return divide(offered, w)
}

// QoSAware is a stateful multiplicative-decrease router: a machine
// that violated QoS, lost cores, or entered degraded mode last slice
// has its routing weight halved; a healthy slice recovers it by 25%
// up to full. Shares are weight × capacity, so a big healthy machine
// still absorbs more than a small one. The AIMD shape drains traffic
// from a faulty node within a few slices and restores it gradually,
// avoiding the thundering-herd flap of instant reinstatement.
type QoSAware struct {
	// Floor bounds how far a machine's weight can decay, keeping a
	// trickle of traffic flowing so recovery is observable. Default
	// 0.05.
	Floor float64

	w []float64
}

// Name implements Router.
func (q *QoSAware) Name() string { return "qos-aware" }

// Route implements Router.
func (q *QoSAware) Route(offered float64, tele []Telemetry) []float64 {
	floor := q.Floor
	if floor <= 0 {
		floor = 0.05
	}
	if len(q.w) != len(tele) {
		q.w = make([]float64, len(tele))
		for i := range q.w {
			q.w[i] = 1
		}
	}
	eff := make([]float64, len(tele))
	for i, t := range tele {
		if t.Valid {
			if t.Violated || t.Degraded || t.FailedCores > 0 {
				q.w[i] = math.Max(floor, q.w[i]*0.5)
			} else {
				q.w[i] = math.Min(1, q.w[i]*1.25)
			}
		}
		eff[i] = q.w[i] * t.MaxQPS
	}
	return divide(offered, eff)
}
