package fleet

import "math"

// A Router splits the fleet's offered QPS across machines each slice.
// Route must return one non-negative share per telemetry entry,
// summing (up to float rounding) to offered; it may keep per-fleet
// state, since the fleet calls it serially, once per slice, with
// telemetry in machine index order. Implementations must not mutate
// the telemetry slice.
type Router interface {
	Name() string
	Route(offered float64, tele []Telemetry) []float64
}

// divide turns routing weights into absolute QPS shares. The sum runs
// in index order (determinism), non-finite or negative weights are
// dropped, and a degenerate weight vector falls back to an equal
// split so traffic is always conserved.
func divide(offered float64, w []float64) []float64 {
	out := make([]float64, len(w))
	sum := 0.0
	for _, v := range w {
		if v > 0 && !math.IsInf(v, 1) {
			sum += v
		}
	}
	if sum <= 0 || math.IsInf(sum, 1) {
		for i := range out {
			out[i] = offered / float64(len(w))
		}
		return out
	}
	for i, v := range w {
		if v > 0 && !math.IsInf(v, 1) {
			out[i] = offered * v / sum
		}
	}
	return out
}

// Uniform splits traffic equally across machines, ignoring telemetry —
// the baseline round-robin load balancer.
type Uniform struct{}

// Name implements Router.
func (Uniform) Name() string { return "uniform" }

// Route implements Router.
func (Uniform) Route(offered float64, tele []Telemetry) []float64 {
	w := make([]float64, len(tele))
	for i := range w {
		w[i] = 1
	}
	return divide(offered, w)
}

// LeastLoaded weights each machine by capacity discounted by how close
// its last-slice tail latency ran to target: weight ∝ maxQPS / (1 +
// p99/QoS). A machine whose tail is twice its target gets a third the
// per-capacity traffic of an idle one; before any telemetry exists the
// split is capacity-proportional.
type LeastLoaded struct{}

// Name implements Router.
func (LeastLoaded) Name() string { return "least-loaded" }

// Route implements Router.
func (LeastLoaded) Route(offered float64, tele []Telemetry) []float64 {
	w := make([]float64, len(tele))
	for i, t := range tele {
		w[i] = t.MaxQPS
		if t.Valid && t.QoSMs > 0 && t.P99Ms > 0 {
			w[i] = t.MaxQPS / (1 + t.P99Ms/t.QoSMs)
		}
	}
	return divide(offered, w)
}

// QoSAware is a stateful multiplicative-decrease router: a machine
// that violated QoS, lost cores, or entered degraded mode last slice
// has its routing weight halved; a healthy slice multiplies it by
// Recover (default 1.25) up to full. Shares are weight × capacity, so
// a big healthy machine still absorbs more than a small one. The AIMD
// shape drains traffic from a faulty node within a few slices and
// restores it gradually, avoiding the thundering-herd flap of instant
// reinstatement.
//
// Weights are keyed by the stable machine id, so membership churn
// (machines joining or leaving between slices) never resets a
// surviving machine's weight. Recovery is clamped below by an
// additive step: pure multiplicative recovery from a weight near zero
// stalls — with a subnormal floor, w×1.25 can round back to w and the
// machine starves forever — so a healthy slice always restores at
// least recoveryStep of weight. With the default floor the additive
// term only engages below the floor and the dynamics are unchanged.
type QoSAware struct {
	// Floor bounds how far a machine's weight can decay, keeping a
	// trickle of traffic flowing so recovery is observable. Default
	// 0.05.
	Floor float64
	// Recover is the multiplicative weight restoration per healthy
	// slice; values <= 1 select the default 1.25. The default restores
	// much more slowly than the ×0.5 decay drains — a machine that
	// flapped down to the floor needs ~14 clean slices back to full —
	// so deployments that re-admit quarantined machines (the control
	// plane's probation path) typically set 2 for a symmetric AIMD.
	Recover float64

	w map[int]float64
}

// recoveryStep is the minimum absolute weight restored per healthy
// slice — small enough never to outrun ×1.25 recovery above weight
// 1/64 (below the default floor), large enough to escape the
// subnormal-stall region in a handful of slices.
const recoveryStep = 1.0 / 256

// Name implements Router.
func (q *QoSAware) Name() string { return "qos-aware" }

// Weight reports machine id's current routing weight in [floor, 1]; a
// machine the router has not seen yet is at full weight.
func (q *QoSAware) Weight(id int) float64 {
	if w, ok := q.w[id]; ok {
		return w
	}
	return 1
}

// Route implements Router.
func (q *QoSAware) Route(offered float64, tele []Telemetry) []float64 {
	floor := q.Floor
	if floor <= 0 {
		floor = 0.05
	}
	rec := q.Recover
	if rec <= 1 {
		rec = 1.25
	}
	if q.w == nil {
		q.w = make(map[int]float64, len(tele))
	}
	eff := make([]float64, len(tele))
	for i, t := range tele {
		w, ok := q.w[t.Machine]
		if !ok {
			w = 1
		}
		if t.Valid {
			if t.Violated || t.Degraded || t.FailedCores > 0 {
				w = math.Max(floor, w*0.5)
			} else {
				w = math.Min(1, math.Max(w*rec, w+recoveryStep))
			}
			q.w[t.Machine] = w
		}
		eff[i] = w * t.MaxQPS
	}
	return divide(offered, eff)
}
