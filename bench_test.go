package cuttlesys_test

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its experiment at smoke scale and reports the
// headline quantity through testing.B metrics (b.ReportMetric), so
// `go test -bench=. -benchmem` both times the harness and prints the
// reproduced numbers. Paper-scale runs live in the cmd/ tools.

import (
	"fmt"
	"testing"

	"cuttlesys"
	"cuttlesys/experiments"
)

func benchSetup() experiments.Setup {
	return experiments.Setup{
		Seed:            1,
		Services:        []string{"xapian", "silo"},
		MixesPerService: 1,
		Slices:          8,
		Caps:            []float64{0.9, 0.55},
	}
}

// BenchmarkFig1Characterization regenerates the §III characterisation:
// tail latency and power of the five services across all 27 core
// configurations at 20% and 80% load.
func BenchmarkFig1Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1([]float64{0.2, 0.8}, 1, 0.2)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTableIISGDReconstruction times the three parallel SGD
// reconstructions of one decision quantum (paper: 4.8 ms on a 32-core
// server; see EXPERIMENTS.md for host scaling).
func BenchmarkTableIISGDReconstruction(b *testing.B) {
	var last experiments.TableIIResult
	for i := 0; i < b.N; i++ {
		last = experiments.TableIIOverheads(uint64(i + 1))
	}
	b.ReportMetric(last.SGDSec*1e3, "sgd-ms")
}

// BenchmarkTableIIDDSSearch times one parallel DDS search at the
// Fig. 6 parameters (paper: 1.3 ms).
func BenchmarkTableIIDDSSearch(b *testing.B) {
	var last experiments.TableIIResult
	for i := 0; i < b.N; i++ {
		last = experiments.TableIIOverheads(uint64(i + 101))
	}
	b.ReportMetric(last.DDSSec*1e3, "dds-ms")
}

// BenchmarkFig5aIsolationAccuracy regenerates the isolated-application
// reconstruction accuracy study and reports the throughput quartile
// spread (paper: within ±10%).
func BenchmarkFig5aIsolationAccuracy(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Fig5aIsolation(uint64(i + 1)) {
			if r.Metric == "throughput" {
				spread = r.Box.P75 - r.Box.P25
			}
		}
	}
	b.ReportMetric(spread, "thr-iqr-pct")
}

// BenchmarkFig5bRuntimeAccuracy regenerates the colocated runtime
// accuracy study (Fig. 5b).
func BenchmarkFig5bRuntimeAccuracy(b *testing.B) {
	s := benchSetup()
	s.Services = []string{"xapian"}
	for i := 0; i < b.N; i++ {
		if res, err := experiments.Fig5bColocation(s); err != nil || len(res) == 0 {
			b.Fatal("no accuracy results")
		}
	}
}

// BenchmarkFig5cPowerCapSweep regenerates the headline comparison and
// reports CuttleSys's advantage over core-gating+wp at the stringent
// cap (paper: up to 2.46x).
func BenchmarkFig5cPowerCapSweep(b *testing.B) {
	s := benchSetup()
	var advantage float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5cPowerCapSweep(s)
		if err != nil {
			b.Fatal(err)
		}
		var cs, cg float64
		for _, r := range rows {
			if r.Cap == 0.55 {
				switch r.Policy {
				case experiments.PolicyCuttleSys:
					cs = r.RelInstr
				case experiments.PolicyCoreGatingWP:
					cg = r.RelInstr
				}
			}
		}
		advantage = cs / cg
	}
	b.ReportMetric(advantage, "cuttle/gating+wp")
}

// BenchmarkFig7TimesliceTrace regenerates the per-timeslice trace.
func BenchmarkFig7TimesliceTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows, err := experiments.Fig7InstrPerSlice(uint64(i + 2)); err != nil || len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig8aDiurnalLoad regenerates the varying-load dynamics.
func BenchmarkFig8aDiurnalLoad(b *testing.B) {
	var viol int
	for i := 0; i < b.N; i++ {
		viol = 0
		recs, err := experiments.Dynamics(experiments.ScenarioVaryingLoad, uint64(i+3), 16)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if r.Violated {
				viol++
			}
		}
	}
	b.ReportMetric(float64(viol), "qos-violations")
}

// BenchmarkFig8bBudgetStep regenerates the varying-budget dynamics.
func BenchmarkFig8bBudgetStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if recs, err := experiments.Dynamics(experiments.ScenarioVaryingBudget, uint64(i+4), 16); err != nil || len(recs) == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkFig8cCoreRelocation regenerates the relocation dynamics and
// reports the peak LC core count (paper: grows past the initial 16).
func BenchmarkFig8cCoreRelocation(b *testing.B) {
	peak := 0
	for i := 0; i < b.N; i++ {
		peak = 0
		recs, err := experiments.Dynamics(experiments.ScenarioRelocation, uint64(i+5), 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if r.LCCores > peak {
				peak = r.LCCores
			}
		}
	}
	b.ReportMetric(float64(peak), "peak-lc-cores")
}

// BenchmarkFig9RBFvsSGD regenerates the inference comparison and
// reports the RBF/SGD mean-absolute-error ratio on throughput (paper:
// RBF dramatically worse, outliers to ±600%).
func BenchmarkFig9RBFvsSGD(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		mae := map[string]float64{}
		for _, r := range experiments.Fig9RBFvsSGD(uint64(i + 1)) {
			mae[r.Method+"/"+r.Metric] = r.MeanAbs
		}
		ratio = mae["rbf/throughput"] / mae["sgd/throughput"]
	}
	b.ReportMetric(ratio, "rbf/sgd-mae")
}

// BenchmarkFig10aExploration regenerates the DDS-vs-GA exploration
// picture and reports the DDS/GA best-feasible-throughput ratio.
func BenchmarkFig10aExploration(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		points, budget := experiments.Fig10aExploration(uint64(i+6), 0.7)
		d, g := experiments.BestUnderBudget(points, budget)
		ratio = d / g
	}
	b.ReportMetric(ratio, "dds/ga")
}

// BenchmarkFig10bDDSvsGA regenerates the searcher comparison inside
// the full runtime (paper: DDS up to 19% ahead).
func BenchmarkFig10bDDSvsGA(b *testing.B) {
	s := benchSetup()
	s.Services = []string{"xapian"}
	s.Caps = []float64{0.7}
	var ratio float64
	for i := 0; i < b.N; i++ {
		var d, g float64
		rows, err := experiments.Fig10bDDSvsGA(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Searcher == "dds" {
				d = r.GmeanBIPS
			} else {
				g = r.GmeanBIPS
			}
		}
		ratio = d / g
	}
	b.ReportMetric(ratio, "dds/ga-gmean")
}

// BenchmarkTrainingSetSweep regenerates the §VIII-A2 sensitivity study
// and reports the 16-application error (paper: ~10%).
func BenchmarkTrainingSetSweep(b *testing.B) {
	var err16 float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.TrainingSetSweep(uint64(i+1), nil) {
			if r.NTrain == 16 {
				err16 = r.MeanAbs
			}
		}
	}
	b.ReportMetric(err16, "err16-pct")
}

// benchFleet assembles an n-machine fleet of full CuttleSys runtimes
// stepped by the given worker count (0 = one goroutine per machine),
// optionally with decide/hold pipelining.
func benchFleet(b *testing.B, n, workers int, pipeline bool) *cuttlesys.Fleet {
	b.Helper()
	lc, err := cuttlesys.AppByName("xapian")
	if err != nil {
		b.Fatal(err)
	}
	_, pool := cuttlesys.SplitTrainTest(1, 16)
	seeds := cuttlesys.FleetSeeds(1, n)
	nodes := make([]cuttlesys.FleetNode, n)
	for i := 0; i < n; i++ {
		m := cuttlesys.NewMachine(cuttlesys.MachineSpec{
			Seed: seeds[i], LC: lc, Batch: cuttlesys.Mix(seeds[i], pool, 16), Reconfigurable: true,
		})
		nodes[i] = cuttlesys.FleetNode{
			Machine:   m,
			Scheduler: cuttlesys.NewRuntime(m, cuttlesys.RuntimeParams{Seed: seeds[i], SGD: cuttlesys.SGDParams{Deterministic: true}}),
		}
	}
	f, err := cuttlesys.NewFleet(cuttlesys.FleetConfig{
		Router: cuttlesys.LeastLoadedRouter{}, Arbiter: cuttlesys.HeadroomArbiter{}, Workers: workers, Pipeline: pipeline,
	}, nodes...)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkFleetStepping times one decision quantum of cluster-scale
// stepping at 1, 4 and 16 machines, serial (one stepping goroutine)
// vs parallel (one per machine) vs pipelined (parallel stepping plus
// each machine's decide overlapping its hold phase). The wall-clock
// serial/parallel ratio is host-dependent — it approaches the machine
// count on wide hosts and 1 on a single-CPU host; the deterministic
// modeled controller speedup is recorded in BENCH_fleet.json's scaling
// section.
func BenchmarkFleetStepping(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		for _, mode := range []struct {
			name     string
			workers  int
			pipeline bool
		}{{"serial", 1, false}, {"parallel", 0, false}, {"pipelined", 0, true}} {
			b.Run(fmt.Sprintf("machines=%d/%s", n, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					f := benchFleet(b, n, mode.workers, mode.pipeline)
					b.StartTimer()
					res, err := f.Run(2, cuttlesys.ConstantLoad(0.7), cuttlesys.ConstantBudget(0.65))
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					b.ReportMetric(res.ModeledControllerSpeedup(), "modeled-speedup")
					f.Close()
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkDecisionQuantum times one full CuttleSys decision — profile
// extraction, three reconstructions, QoS scan, DDS search, budget
// enforcement — the end-to-end cost a deployment would care about.
func BenchmarkDecisionQuantum(b *testing.B) {
	lc, err := cuttlesys.AppByName("xapian")
	if err != nil {
		b.Fatal(err)
	}
	_, pool := cuttlesys.SplitTrainTest(1, 16)
	m := cuttlesys.NewMachine(cuttlesys.MachineSpec{
		Seed: 1, LC: lc, Batch: cuttlesys.Mix(1, pool, 16), Reconfigurable: true,
	})
	rt := cuttlesys.NewRuntime(m, cuttlesys.RuntimeParams{Seed: 1})
	qps := 0.8 * lc.MaxQPS
	budget := 0.7 * m.MaxPowerW()
	var profile []cuttlesys.PhaseResult
	for _, ph := range rt.ProfilePhases(qps, budget) {
		profile = append(profile, m.Run(ph.Alloc, ph.Dur, qps))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Decide(profile, qps, budget)
	}
}
