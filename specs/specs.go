// Package specs embeds the repo's scenario spec library: the declarative
// ports of the cmd/fleet cluster scenarios and cmd/ops control-plane
// drills, plus the extended scenarios behind BENCH_scenario.json and a
// recorded traffic trace for replay. Specs are plain text in the
// internal/scenario grammar (DESIGN.md §13); cmd/scenario validates,
// describes and runs them, and CI validates every file here on each
// push.
package specs

import "embed"

// FS holds every embedded spec and trace, rooted at this directory, so
// trace clauses resolve paths like traces/prod-day.csv against it.
//
//go:embed *.spec traces/*.csv
var FS embed.FS

// Names lists the embedded scenario names — the .spec file base names
// in lexical (deterministic) order.
func Names() []string {
	entries, err := FS.ReadDir(".")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		const ext = ".spec"
		if n := e.Name(); len(n) > len(ext) && n[len(n)-len(ext):] == ext {
			names = append(names, n[:len(n)-len(ext)])
		}
	}
	return names
}

// Source returns the spec text for one embedded scenario name.
func Source(name string) ([]byte, error) {
	return FS.ReadFile(name + ".spec")
}
