package specs

import (
	"bytes"
	"io/fs"
	"sort"
	"testing"

	"cuttlesys/internal/scenario"
)

// TestNamesSortedAndComplete pins the library roster: Names() is the
// lexical list of embedded specs, and the scenarios the reference
// reports depend on are all present.
func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, n := range []string{
		"steady", "diurnal", "degraded-node", "budget-squeeze", // cmd/fleet
		"failover", "brownout", "surge", // cmd/ops
		"flash-crowd", "load-shift-storm", "correlated-brownout", "trace-replay", // cmd/scenario
	} {
		if !have[n] {
			t.Errorf("library missing spec %q", n)
		}
	}
}

// TestAllSpecsParseAndRoundTrip requires every embedded spec to parse,
// declare the name it is filed under, and survive the canonical
// round trip — Format(Parse(src)) must be a fixed point, so the file
// on disk and the engine's canonical form never drift apart.
func TestAllSpecsParseAndRoundTrip(t *testing.T) {
	for _, name := range Names() {
		src, err := Source(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sp, err := scenario.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sp.Name != name {
			t.Errorf("%s.spec declares scenario %q", name, sp.Name)
		}
		canon := scenario.Format(sp)
		again, err := scenario.Parse(canon)
		if err != nil {
			t.Fatalf("%s: canonical form does not re-parse: %v", name, err)
		}
		if !bytes.Equal(scenario.Format(again), canon) {
			t.Errorf("%s: canonical form is not a fixed point", name)
		}
	}
}

// TestAllSpecsCompileSelfContained compiles every spec with zero
// overrides: the library promises each file carries its full geometry
// and that replay clauses resolve against the embedded trace files.
func TestAllSpecsCompileSelfContained(t *testing.T) {
	for _, name := range Names() {
		src, err := Source(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sp, err := scenario.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := scenario.Compile(sp, scenario.Options{Seed: 1, FS: FS}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTraceFilesEmbedded checks the trace directory rides along in the
// embedded filesystem.
func TestTraceFilesEmbedded(t *testing.T) {
	data, err := fs.ReadFile(FS, "traces/prod-day.csv")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := scenario.ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("embedded trace is empty")
	}
}

// TestSourceUnknown checks the error path names the missing spec.
func TestSourceUnknown(t *testing.T) {
	if _, err := Source("no-such-spec"); err == nil {
		t.Fatal("unknown spec name returned a source")
	}
}
