package cuttlesys_test

import (
	"testing"

	"cuttlesys"
)

// The facade must expose enough to run every policy end to end — this
// is the library's contract with downstream users.
func TestPublicAPIEndToEnd(t *testing.T) {
	lc, err := cuttlesys.AppByName("silo")
	if err != nil {
		t.Fatal(err)
	}
	_, pool := cuttlesys.SplitTrainTest(1, 16)
	mkMachine := func(reconf bool) *cuttlesys.Machine {
		return cuttlesys.NewMachine(cuttlesys.MachineSpec{
			Seed: 9, LC: lc, Batch: cuttlesys.Mix(9, pool, 16), Reconfigurable: reconf,
		})
	}

	type policyCase struct {
		name   string
		reconf bool
		mk     func(m *cuttlesys.Machine) cuttlesys.Scheduler
	}
	cases := []policyCase{
		{"cuttlesys", true, func(m *cuttlesys.Machine) cuttlesys.Scheduler {
			return cuttlesys.NewRuntime(m, cuttlesys.RuntimeParams{Seed: 9})
		}},
		{"no-gating", false, func(m *cuttlesys.Machine) cuttlesys.Scheduler {
			return cuttlesys.NewNoGating(m)
		}},
		{"core-gating", false, func(m *cuttlesys.Machine) cuttlesys.Scheduler {
			return cuttlesys.NewCoreGating(m, cuttlesys.DescendingPower, true, 9)
		}},
		{"asymm", false, func(m *cuttlesys.Machine) cuttlesys.Scheduler {
			return cuttlesys.NewAsymmetric(m, true)
		}},
		{"flicker", true, func(m *cuttlesys.Machine) cuttlesys.Scheduler {
			return cuttlesys.NewFlicker(m, true, 9)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := mkMachine(c.reconf)
			res, err := cuttlesys.Run(m, c.mk(m), 3,
				cuttlesys.ConstantLoad(0.7), cuttlesys.ConstantBudget(0.8))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Slices) != 3 {
				t.Fatalf("%s: %d slices", c.name, len(res.Slices))
			}
			if res.TotalInstrB() <= 0 {
				t.Fatalf("%s: no work", c.name)
			}
		})
	}
}

func TestCatalogExposed(t *testing.T) {
	if got := len(cuttlesys.TailBench()); got != 5 {
		t.Fatalf("TailBench: %d services", got)
	}
	if got := len(cuttlesys.SPEC()); got != 28 {
		t.Fatalf("SPEC: %d apps", got)
	}
	if _, err := cuttlesys.AppByName("not-a-benchmark"); err == nil {
		t.Fatal("AppByName should reject unknown names")
	}
}

func TestCustomProfileValidates(t *testing.T) {
	p := &cuttlesys.Profile{
		Name: "svc", Class: cuttlesys.LatencyCritical,
		ILP: 2, FESens: 0.3, BESens: 0.1, LSSens: 0.5, BrMPKI: 3,
		MemFrac: 0.4, L1MissRate: 0.1, MLP: 4,
		WSWays: 3, MissFloor: 0.1, MissCeil: 0.7, MissSteep: 1.4,
		Activity: 0.9,
		MaxQPS:   10000, QoSTargetMs: 5, QuerySigma: 0.5, SatUtil: 0.75,
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid custom profile rejected: %v", err)
	}
	p.MaxQPS = 0
	if err := p.Validate(); err == nil {
		t.Fatal("invalid custom profile accepted")
	}
}

func TestPatternsExposed(t *testing.T) {
	if cuttlesys.ConstantLoad(0.5)(3) != 0.5 {
		t.Fatal("ConstantLoad broken")
	}
	if cuttlesys.StepBudget(0.9, 0.6, 1, 2)(1.5) != 0.6 {
		t.Fatal("StepBudget broken")
	}
	if v := cuttlesys.DiurnalLoad(0.2, 1.0, 2.0)(1.0); v < 0.99 {
		t.Fatalf("DiurnalLoad peak = %v", v)
	}
	if cuttlesys.SliceDur != 0.1 {
		t.Fatal("SliceDur should be the paper's 100 ms quantum")
	}
}

func TestMultiServiceFacade(t *testing.T) {
	xapian := mustApp(t, "xapian")
	silo := mustApp(t, "silo")
	_, pool := cuttlesys.SplitTrainTest(1, 16)
	m := cuttlesys.NewMachine(cuttlesys.MachineSpec{
		Seed: 33, LC: xapian, ExtraLCs: []*cuttlesys.Profile{silo},
		Batch: cuttlesys.Mix(33, pool, 16), Reconfigurable: true,
	})
	rt := cuttlesys.NewRuntime(m, cuttlesys.RuntimeParams{Seed: 33})
	res, err := cuttlesys.RunMulti(m, rt, 4,
		[]cuttlesys.LoadPattern{cuttlesys.ConstantLoad(0.4), cuttlesys.ConstantLoad(0.3)},
		cuttlesys.ConstantBudget(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) != 4 || res.TotalInstrB() <= 0 {
		t.Fatal("multi-service facade run failed")
	}
	if len(res.Slices[0].ExtraP99Ms) != 1 {
		t.Fatal("extra-service records missing")
	}
}

// mustApp resolves a service profile via the facade, failing the test
// on a bad name so the error is never silently dropped.
func mustApp(t testing.TB, name string) *cuttlesys.Profile {
	t.Helper()
	app, err := cuttlesys.AppByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return app
}
