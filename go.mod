module cuttlesys

go 1.22
