// Package cuttlesys is a from-scratch Go implementation of CuttleSys
// (Kulkarni et al., MICRO 2020): a data-driven resource manager for
// interactive services on reconfigurable multicores. Each 100 ms
// decision quantum the runtime profiles every co-scheduled application
// for two 1 ms samples, reconstructs its full performance/power
// surface across all 108 core-and-cache configurations with
// collaborative filtering (PQ-reconstruction with SGD), and explores
// the joint configuration space with parallel Dynamically Dimensioned
// Search — meeting the latency-critical service's QoS and maximising
// batch throughput under a power budget.
//
// The package re-exports the library's public surface: the machine
// simulator that stands in for the paper's zsim+McPAT testbed, the
// CuttleSys runtime, every baseline from the paper's evaluation, the
// workload catalog, and the experiment harness. The reproduction of
// each table and figure lives in the experiments package, with one
// runnable command per figure under cmd/.
//
// Quick start:
//
//	lc, _ := cuttlesys.AppByName("xapian")
//	_, pool := cuttlesys.SplitTrainTest(1, 16)
//	m := cuttlesys.NewMachine(cuttlesys.MachineSpec{
//		Seed: 1, LC: lc, Batch: cuttlesys.Mix(1, pool, 16), Reconfigurable: true,
//	})
//	rt := cuttlesys.NewRuntime(m, cuttlesys.RuntimeParams{Seed: 1})
//	res, err := cuttlesys.Run(m, rt, 10, cuttlesys.ConstantLoad(0.8), cuttlesys.ConstantBudget(0.7))
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(res)
package cuttlesys

import (
	"cuttlesys/internal/baseline"
	"cuttlesys/internal/config"
	"cuttlesys/internal/core"
	"cuttlesys/internal/ctrlplane"
	"cuttlesys/internal/fault"
	"cuttlesys/internal/fleet"
	"cuttlesys/internal/harness"
	"cuttlesys/internal/modelplane"
	"cuttlesys/internal/obs"
	"cuttlesys/internal/scenario"
	"cuttlesys/internal/sgd"
	"cuttlesys/internal/sim"
	"cuttlesys/internal/workload"
)

// Machine simulates a CMP of reconfigurable (or fixed) cores sharing a
// 32-way LLC, DRAM bandwidth and a power budget.
type Machine = sim.Machine

// MachineSpec configures a Machine.
type MachineSpec = sim.Spec

// Allocation is a per-timeslice machine assignment.
type Allocation = sim.Allocation

// BatchAssign is one batch job's assignment within an Allocation.
type BatchAssign = sim.BatchAssign

// PhaseResult reports one phase of machine execution.
type PhaseResult = sim.PhaseResult

// Profile describes one application's first-order behaviour.
type Profile = workload.Profile

// AppClass distinguishes batch jobs from latency-critical services.
type AppClass = workload.Class

// Application classes for Profile.Class.
const (
	BatchApp        = workload.Batch
	LatencyCritical = workload.LatencyCritical
)

// CoreConfig is a reconfigurable core's {FE,BE,LS} width setting.
type CoreConfig = config.Core

// CacheAlloc is a per-application LLC way allocation.
type CacheAlloc = config.CacheAlloc

// Resource pairs a core configuration with a cache allocation.
type Resource = config.Resource

// Scheduler is the per-timeslice resource-manager interface every
// policy implements.
type Scheduler = harness.Scheduler

// Phase pairs an allocation with a duration inside one timeslice.
type Phase = harness.Phase

// Result aggregates an experiment run.
type Result = harness.Result

// SliceRecord captures one timeslice of an experiment.
type SliceRecord = harness.SliceRecord

// LoadPattern yields the LC service's offered load over time.
type LoadPattern = harness.LoadPattern

// BudgetPattern yields the power budget over time.
type BudgetPattern = harness.BudgetPattern

// Runtime is the CuttleSys scheduler (§IV-§VI).
type Runtime = core.Runtime

// RuntimeParams tunes the CuttleSys runtime; zero values select the
// paper's settings.
type RuntimeParams = core.Params

// GatingPolicy selects the core-gating baseline's shutdown order.
type GatingPolicy = baseline.GatingPolicy

// Core-gating policies (§VII-B).
const (
	DescendingPower      = baseline.DescendingPower
	AscendingPower       = baseline.AscendingPower
	AscendingBIPSPerWatt = baseline.AscendingBIPSPerWatt
	AscendingBIPS        = baseline.AscendingBIPS
)

// SliceDur is the decision quantum: 100 ms.
const SliceDur = harness.SliceDur

// NewMachine constructs a machine simulator from spec.
func NewMachine(spec MachineSpec) *Machine { return sim.New(spec) }

// NewRuntime constructs the CuttleSys runtime for a machine.
func NewRuntime(m *Machine, p RuntimeParams) *Runtime { return core.New(m, p) }

// NewNoGating constructs the no-gating reference policy.
func NewNoGating(m *Machine) Scheduler { return baseline.NewNoGating(m) }

// NewCoreGating constructs the core-level gating baseline.
func NewCoreGating(m *Machine, policy GatingPolicy, wayPartition bool, seed uint64) Scheduler {
	return baseline.NewCoreGating(m, policy, wayPartition, seed)
}

// NewAsymmetric constructs the asymmetric-multicore baseline; oracle
// selects the per-slice optimal big/little split.
func NewAsymmetric(m *Machine, oracle bool) Scheduler { return baseline.NewAsymmetric(m, oracle) }

// NewFlicker constructs the Flicker baseline; modeB pins the LC
// service to the widest configuration (§VIII-E).
func NewFlicker(m *Machine, modeB bool, seed uint64) Scheduler {
	return baseline.NewFlicker(m, modeB, seed)
}

// NewDVFS constructs the per-core DVFS baseline (maxBIPS, §II-A1) —
// an extension beyond the paper's comparison set, positioning
// reconfiguration against the incumbent power-management technique.
func NewDVFS(m *Machine, seed uint64) Scheduler { return baseline.NewDVFS(m, seed) }

// Run executes an experiment: slices timeslices of scheduler s on
// machine m under the given load and power-budget patterns. It returns
// an error for invalid setups (non-positive slice count, missing load
// patterns, bad profile phases) instead of panicking.
func Run(m *Machine, s Scheduler, slices int, load LoadPattern, budget BudgetPattern) (*Result, error) {
	return harness.Run(m, s, slices, load, budget)
}

// FaultInjector perturbs a run with hardware, telemetry, and
// environmental faults; construct one with NewFaultSchedule.
type FaultInjector = harness.FaultInjector

// FaultEvent is one timed fault in a schedule.
type FaultEvent = fault.Event

// FaultKind names a failure mode.
type FaultKind = fault.Kind

// Failure modes for FaultEvent.Kind.
const (
	CoreFailStop     = fault.CoreFailStop
	CoreFailSlow     = fault.CoreFailSlow
	ProfileCorrupt   = fault.ProfileCorrupt
	TelemetryGarbage = fault.TelemetryGarbage
	FlashCrowd       = fault.FlashCrowd
	BudgetDrop       = fault.BudgetDrop
)

// ComposeFaults layers several fault injectors into one — a machine's
// standing chaos schedule plus a drill's incident. Disruptions add,
// load/budget factors multiply, telemetry corruption chains in
// argument order; nil members are skipped and a single live member is
// returned unchanged. See fault.Compose.
func ComposeFaults(parts ...FaultInjector) FaultInjector {
	ps := make([]fault.Injector, len(parts))
	for i, p := range parts {
		if p != nil {
			ps[i] = p
		}
	}
	return fault.Compose(ps...)
}

// NewFaultSchedule builds a deterministic fault schedule; the same
// seed and events always reproduce the same perturbations.
func NewFaultSchedule(seed uint64, events ...FaultEvent) (*fault.Schedule, error) {
	return fault.NewSchedule(seed, events...)
}

// RunFaulted is Run under a fault injector: a nil injector (or an
// empty schedule) reproduces Run exactly.
func RunFaulted(m *Machine, s Scheduler, slices int, load LoadPattern, budget BudgetPattern, inj FaultInjector) (*Result, error) {
	return harness.RunFaulted(m, s, slices, load, budget, inj)
}

// MultiScheduler manages machines hosting several latency-critical
// services (MachineSpec.ExtraLCs) — the paper's §VII-A generalisation.
// The CuttleSys Runtime implements it.
type MultiScheduler = harness.MultiScheduler

// LCAssign is one extra service's per-slice assignment.
type LCAssign = sim.LCAssign

// RunMulti executes a multi-service experiment with one load pattern
// per service, primary first.
func RunMulti(m *Machine, s MultiScheduler, slices int, loads []LoadPattern, budget BudgetPattern) (*Result, error) {
	return harness.RunMulti(m, s, slices, loads, budget)
}

// RunFaultedMulti is RunMulti under a fault injector.
func RunFaultedMulti(m *Machine, s MultiScheduler, slices int, loads []LoadPattern, budget BudgetPattern, inj FaultInjector) (*Result, error) {
	return harness.RunFaultedMulti(m, s, slices, loads, budget, inj)
}

// ConstantLoad offers a fixed fraction of the service's max QPS.
func ConstantLoad(frac float64) LoadPattern { return harness.ConstantLoad(frac) }

// DiurnalLoad swings smoothly between lo and hi with the given period.
func DiurnalLoad(lo, hi, period float64) LoadPattern { return harness.DiurnalLoad(lo, hi, period) }

// StepLoad jumps from lo to hi during [from, to).
func StepLoad(lo, hi, from, to float64) LoadPattern { return harness.StepLoad(lo, hi, from, to) }

// ConstantBudget caps power at a fixed fraction of the machine's
// reference maximum.
func ConstantBudget(frac float64) BudgetPattern { return harness.ConstantBudget(frac) }

// StepBudget uses lo during [from, to) and hi elsewhere.
func StepBudget(hi, lo, from, to float64) BudgetPattern { return harness.StepBudget(hi, lo, from, to) }

// TailBench returns the five latency-critical service profiles
// (Xapian, Masstree, ImgDNN, Moses, Silo).
func TailBench() []*Profile { return workload.TailBench() }

// SPEC returns the 28 SPEC CPU2006-like batch profiles.
func SPEC() []*Profile { return workload.SPEC() }

// AppByName looks up a catalog application.
func AppByName(name string) (*Profile, error) { return workload.ByName(name) }

// SplitTrainTest partitions the SPEC catalog into offline-training and
// testing applications (§VII-A).
func SplitTrainTest(seed uint64, nTrain int) (train, test []*Profile) {
	return workload.SplitTrainTest(seed, nTrain)
}

// Mix builds a multiprogrammed batch mix of n jobs drawn from pool.
func Mix(seed uint64, pool []*Profile, n int) []*Profile { return workload.Mix(seed, pool, n) }

// SGDParams tunes the PQ-reconstruction inside RuntimeParams.SGD.
// Set Workers to 1 for results that are independent of GOMAXPROCS
// (the parallel variant is HOGWILD — lock-free and order-dependent).
type SGDParams = sgd.Params

// Single lifts a single-service Scheduler into the MultiScheduler
// interface, forwarding the resilience extensions when implemented.
func Single(s Scheduler) MultiScheduler { return harness.Single(s) }

// Fleet is a cluster of CuttleSys machines behind a traffic router
// under one shared power budget (DESIGN.md §8).
type Fleet = fleet.Fleet

// FleetConfig tunes a Fleet (router, budget arbiter, worker count).
type FleetConfig = fleet.Config

// FleetNode describes one machine joining a Fleet.
type FleetNode = fleet.NodeSpec

// FleetTelemetry is the per-machine state routers and arbiters see.
type FleetTelemetry = fleet.Telemetry

// FleetResult aggregates a fleet run.
type FleetResult = fleet.Result

// FleetSliceRecord captures one fleet decision quantum.
type FleetSliceRecord = fleet.SliceRecord

// Router splits the fleet's offered QPS across machines each slice.
type Router = fleet.Router

// Arbiter partitions the cluster power budget across machines.
type Arbiter = fleet.Arbiter

// Routing policies.
type (
	// UniformRouter splits traffic equally.
	UniformRouter = fleet.Uniform
	// LeastLoadedRouter discounts capacity by last-slice tail latency.
	LeastLoadedRouter = fleet.LeastLoaded
	// QoSAwareRouter drains violating or degraded machines (AIMD).
	QoSAwareRouter = fleet.QoSAware
)

// Budget arbiters.
type (
	// EqualShareArbiter gives every machine the same wattage.
	EqualShareArbiter = fleet.EqualShare
	// ProportionalArbiter splits by reference maximum power.
	ProportionalArbiter = fleet.Proportional
	// HeadroomArbiter re-partitions the cap from last-slice demand.
	HeadroomArbiter = fleet.Headroom
)

// NewFleet assembles a cluster of machines; see fleet.New.
func NewFleet(cfg FleetConfig, nodes ...FleetNode) (*Fleet, error) {
	return fleet.New(cfg, nodes...)
}

// FleetSeeds derives n machine seeds from one fleet seed.
func FleetSeeds(seed uint64, n int) []uint64 { return fleet.Seeds(seed, n) }

// ControlPlane wraps a Fleet with dynamic membership, a debounced
// health state machine (quarantine, drain, probation) and a closed-loop
// autoscaler (DESIGN.md §12).
type ControlPlane = ctrlplane.Manager

// ControlPlaneConfig tunes a ControlPlane: the embedded fleet config
// plus health-check debounce and autoscaler policy.
type ControlPlaneConfig = ctrlplane.Config

// HealthConfig tunes the per-machine health state machine.
type HealthConfig = ctrlplane.HealthConfig

// ScaleConfig tunes the autoscaler (utilisation bands, hysteresis,
// cooldown, power headroom gate and the machine provisioner).
type ScaleConfig = ctrlplane.ScaleConfig

// MachineState is a machine's position in the health state machine.
type MachineState = ctrlplane.State

// Health state machine states.
const (
	MachineHealthy     = ctrlplane.Healthy
	MachineSuspect     = ctrlplane.Suspect
	MachineQuarantined = ctrlplane.Quarantined
	MachineDraining    = ctrlplane.Draining
	MachineProbation   = ctrlplane.Probation
	MachineEvicted     = ctrlplane.Evicted
)

// MembershipEvent is one entry in the control plane's membership log.
type MembershipEvent = ctrlplane.MembershipEvent

// HealthTransition is one health state machine edge taken by a machine.
type HealthTransition = ctrlplane.Transition

// ControlPlaneResult aggregates a managed run: the inner fleet result
// plus per-slice states, the membership log and every transition.
type ControlPlaneResult = ctrlplane.Result

// ControlPlaneSliceRecord is a fleet slice record annotated with the
// per-member health states and the shed (unrouted) load.
type ControlPlaneSliceRecord = ctrlplane.SliceRecord

// NewControlPlane assembles a managed fleet; see ctrlplane.New.
func NewControlPlane(cfg ControlPlaneConfig, nodes ...FleetNode) (*ControlPlane, error) {
	return ctrlplane.New(cfg, nodes...)
}

// ModelPlane is the fleet-wide model-sharing plane: machines running
// the same service mix publish their trained SGD factors to a
// versioned, deterministically-folded aggregation store, and new or
// recovered machines warm-start from the fleet aggregate instead of
// cold initialisation (DESIGN.md §14). Hook one into
// FleetConfig.Share and ControlPlaneConfig.WarmStart.
type ModelPlane = modelplane.Plane

// ModelPlaneParams tunes the plane's accuracy-vs-staleness knobs:
// sync period, aggregate decay, fine-tune sweeps, confidence credit.
type ModelPlaneParams = modelplane.Params

// ModelPlaneKeyStats summarises one service-mix key's share state.
type ModelPlaneKeyStats = modelplane.KeyStats

// NewModelPlane builds an empty model-sharing plane; see
// modelplane.New. A nil collector disables instrumentation.
func NewModelPlane(p ModelPlaneParams, c Collector) *ModelPlane { return modelplane.New(p, c) }

// Collector receives trace events, metric updates and profiling
// samples from an instrumented run (DESIGN.md §10). Attach one via
// FleetConfig.Collector or RunTraced; NopCollector drops everything
// at zero allocation cost.
type Collector = obs.Collector

// NopCollector is the disabled Collector.
var NopCollector = obs.Nop

// TraceRecorder is the enabled Collector: it buffers trace events,
// aggregates metrics and wall/allocation profiles, and exports them
// deterministically (JSONL, Chrome trace_event, Prometheus text).
type TraceRecorder = obs.Recorder

// NewTraceRecorder builds an empty recorder.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// TraceEvent is one span or instant in a recorded trace.
type TraceEvent = obs.Event

// TraceSummary condenses a trace: per-phase simulated-time breakdown,
// top spans, and the QoS-violation timeline.
type TraceSummary = obs.Summary

// SummarizeTrace builds a TraceSummary; top caps the span list
// (non-positive selects the default).
func SummarizeTrace(events []TraceEvent, top int) *TraceSummary { return obs.Summarize(events, top) }

// RunTraced is RunFaultedMulti with a Collector attached: the run's
// profile→decide→hold structure, metrics and fault transitions land in
// c. A nil injector skips fault perturbation; a nil collector
// reproduces RunMulti exactly.
func RunTraced(m *Machine, s MultiScheduler, slices int, loads []LoadPattern, budget BudgetPattern, inj FaultInjector, c Collector) (*Result, error) {
	return harness.RunTraced(m, s, slices, loads, budget, inj, c)
}

// WriteReport writes v in the repo's canonical report encoding —
// two-space-indented JSON plus a trailing newline — to path, or to
// stdout when path is empty. Every cmd/ report funnels through it.
func WriteReport(path string, v any) error { return obs.WriteReport(path, v) }

// Scenario is a parsed declarative scenario spec: one spec file plus
// one seed fully determines a fleet run (internal/scenario,
// DESIGN.md §13).
type Scenario = scenario.Spec

// ScenarioOptions completes a spec into a concrete run; set fields
// override the spec's own geometry.
type ScenarioOptions = scenario.Options

// CompiledScenario is a spec resolved against its options: lowered
// load/budget patterns plus fleet and control-plane builders.
type CompiledScenario = scenario.Compiled

// ScenarioResult is one scenario run: the fleet result plus the
// control-plane record when the scenario is managed.
type ScenarioResult = scenario.Result

// ParseScenario reads one spec from its textual form, applying every
// documented default and validating the result.
func ParseScenario(src []byte) (*Scenario, error) { return scenario.Parse(src) }

// FormatScenario renders the canonical textual form of a spec;
// ParseScenario(FormatScenario(s)) reproduces s exactly.
func FormatScenario(s *Scenario) []byte { return scenario.Format(s) }

// ScenarioHash is the spec's identity: FNV-1a 64 over its canonical
// form, the value that keys every stochastic arrival stream.
func ScenarioHash(s *Scenario) uint64 { return scenario.Hash(s) }

// CompileScenario lowers a validated spec against its run options.
func CompileScenario(s *Scenario, opt ScenarioOptions) (*CompiledScenario, error) {
	return scenario.Compile(s, opt)
}

// RouterByName builds a fresh fleet router from its policy name.
func RouterByName(name string) (Router, error) { return fleet.RouterByName(name) }

// ArbiterByName builds a budget arbiter from its policy name.
func ArbiterByName(name string) (Arbiter, error) { return fleet.ArbiterByName(name) }
